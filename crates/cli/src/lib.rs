//! Implementation of the `puffer` command-line tool.
//!
//! The binary wires the workspace crates into a file-based flow over the
//! [`puffer_db::io`] text format:
//!
//! ```text
//! puffer gen     --preset media_subsys --scale 0.01 -o design.pd
//! puffer stats   design.pd
//! puffer place   design.pd -o placed.pl [--flow puffer|reference|replace]
//! puffer eval    design.pd placed.pl [--maps out_dir]
//! puffer refine  design.pd placed.pl -o refined.pl [--guard]
//! ```
//!
//! All logic lives in this library so it can be unit-tested; `main.rs` only
//! forwards `std::env::args` and sets the exit code.

#![forbid(unsafe_code)]

use puffer::{
    evaluate, evaluate_bounded, CheckpointPolicy, FlowCheckpoint, Job, PufferConfig, PufferPlacer,
    ReferenceConfig, ReferencePlacer, ReplaceConfig, ReplacePlacer, ScaleClass,
};
use puffer_audit::{audit_metrics, audit_run, flow_validator, lint_workspace, LintConfig, Validate};
use puffer_budget::fsx;
use puffer_budget::{
    Budget, CancelToken, ChaosPlan, DegradationLadder, FaultClass, LadderState, StallWatchdog,
};
use puffer_db::io::{read_design, read_placement, write_design, write_placement};
use puffer_dp::{refine, refine_bounded, refine_with_congestion, DetailedConfig};
use puffer_explore::{explore_params_bounded, ExplorationConfig};
use puffer_gen::{generate, presets, GeneratorConfig};
use puffer_legal::check_legal;
use puffer_rng::StdRng;
use puffer_route::{assign_layers, LayerConfig, RouterConfig};
use puffer_serve::{
    run_chaos, serve_lines, serve_listener, Action, ChaosConfig, Engine, JsonLine, ServeConfig,
    ServerOutcome,
};
use puffer_trace::Trace;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A CLI failure: message for stderr plus the process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code (always non-zero).
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn run(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
puffer — routability-driven placement (PUFFER, DAC 2023 reproduction)

usage:
  puffer gen    --preset <name> [--scale <f>] -o <design.pd>
  puffer gen    --cells <n> [--nets <n>] [--macros <n>] [--hotspot <f>]
                [--utilization <f>] [--seed <n>] -o <design.pd>
  puffer convert <design.aux> -o <design.pd>      (Bookshelf import)
  puffer stats  <design.pd>
  puffer place  <design.pd> -o <placed.pl> [--flow puffer|reference|replace]
                [--max-iters <n>] [--journal <run.pj>] [--checkpoint-every <n>]
                [--resume <run.pj>] [--threads <n>] [--validate]
                [--metrics <run.jsonl>] [--trace-summary]
                [--deadline <secs>] [--degrade <ladder>] [--watchdog <secs>]
                [--incremental-congest | --no-incremental-congest]
                [--scale-class auto|small|medium|huge]
  puffer eval   <design.pd> <placed.pl> [--maps <dir>] [--layers] [--validate]
                [--threads <n>] [--metrics <run.jsonl>] [--trace-summary]
                [--deadline <secs>]
  puffer explore <design.pd> [--trials <n>] [--max-iters <n>]
                [--deadline <secs>] [--degrade <ladder>] [--metrics <run.jsonl>]
  puffer trace  <run.jsonl> [--check]
  puffer refine <design.pd> <placed.pl> -o <refined.pl> [--guard]
                [--deadline <secs>] [--scale-class auto|small|medium|huge]
  puffer draw   <design.pd> <placed.pl> -o <out.svg> [--rows]
  puffer serve  (--listen <addr> | --stdin) --journal-dir <dir>
                [--workers <n>] [--queue <n>] [--checkpoint-every <n>]
                [--retries <n>] [--backoff-ms <n>]   (job daemon)
  puffer serve  --chaos [--seeds <n>] [--cells <n>] [--max-iters <n>]
                [--workers <n>]   (daemon fault-injection harness)
  puffer chaos  [--seeds <n>] [--cells <n>] [--max-iters <n>]
                [--classes all|flow|fs]
                (deterministic fault-injection harness)
  puffer lint   [--root <dir>] [--json]           (workspace policy check)
  puffer audit  design  <design.pd>
  puffer audit  journal <run.pj> [<design.pd>]
  puffer audit  metrics <run.jsonl>
  puffer audit  run     <run.pj> <run.jsonl>      (cross-file consistency)

presets: or1200 asic_entity bit_coin media_subsys media_pg_modify
         a53_adb_wrap ct_scan ct_top e31_ecoreplex openc910
ladders: default | none | <step>[@<fraction>][,<step>...] with steps
         coarse-congestion freeze-padding cap-trials early-exit-gp
";

/// Runs the CLI on the given arguments (without the program name).
/// Output lines are pushed to `out` so tests can capture them.
///
/// # Errors
///
/// Returns [`CliError`] with a usage (2) or runtime (1) exit code.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    let rest = &args[1..];
    match command.as_str() {
        "gen" => cmd_gen(rest, out),
        "convert" => cmd_convert(rest, out),
        "stats" => cmd_stats(rest, out),
        "place" => cmd_place(rest, out),
        "eval" => cmd_eval(rest, out),
        "explore" => cmd_explore(rest, out),
        "serve" => cmd_serve(rest, out),
        "chaos" => cmd_chaos(rest, out),
        "trace" => cmd_trace(rest, out),
        "refine" => cmd_refine(rest, out),
        "draw" => cmd_draw(rest, out),
        "lint" => cmd_lint(rest, out),
        "audit" => cmd_audit(rest, out),
        "--help" | "-h" | "help" => {
            out.push_str(USAGE);
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
    }
}

/// A tiny flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Self, CliError> {
        let mut f = Flags {
            positional: Vec::new(),
            options: Vec::new(),
            switches: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                if switch_flags.contains(&name) {
                    f.switches.push(name.to_string());
                } else if value_flags.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::usage(format!("--{name} needs a value")))?;
                    f.options.push((name.to_string(), v.clone()));
                } else {
                    return Err(CliError::usage(format!("unknown flag '{a}'\n\n{USAGE}")));
                }
            } else {
                f.positional.push(a.clone());
            }
        }
        Ok(f)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::usage(format!("--{name}: cannot parse '{v}'"))),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_design(path: &str) -> Result<puffer_db::design::Design, CliError> {
    let file = File::open(path).map_err(|e| CliError::run(format!("cannot open {path}: {e}")))?;
    read_design(file).map_err(|e| CliError::run(format!("cannot parse {path}: {e}")))
}

fn load_placement(path: &str, num_cells: usize) -> Result<puffer_db::design::Placement, CliError> {
    let file = File::open(path).map_err(|e| CliError::run(format!("cannot open {path}: {e}")))?;
    read_placement(file, num_cells).map_err(|e| CliError::run(format!("cannot parse {path}: {e}")))
}

fn cmd_gen(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "preset",
            "scale",
            "cells",
            "nets",
            "macros",
            "hotspot",
            "utilization",
            "seed",
            "o",
        ],
        &[],
    )?;
    let scale: f64 = flags.get_parsed("scale")?.unwrap_or(0.01);
    let config: GeneratorConfig = if let Some(name) = flags.get("preset") {
        presets::by_name(name, scale)
            .map_err(|e| CliError::usage(e.to_string()))?
            .ok_or_else(|| CliError::usage(format!("unknown preset '{name}'")))?
    } else {
        let cells: usize = flags
            .get_parsed("cells")?
            .ok_or_else(|| CliError::usage("gen needs --preset or --cells"))?;
        let mut c = GeneratorConfig {
            name: "custom".into(),
            num_cells: cells,
            num_nets: flags.get_parsed("nets")?.unwrap_or(cells + cells / 10),
            ..GeneratorConfig::default()
        };
        if let Some(m) = flags.get_parsed("macros")? {
            c.num_macros = m;
        }
        if let Some(h) = flags.get_parsed("hotspot")? {
            c.hotspot = h;
        }
        if let Some(u) = flags.get_parsed("utilization")? {
            c.utilization = u;
        }
        if let Some(s) = flags.get_parsed("seed")? {
            c.seed = s;
        }
        c
    };
    let output = flags
        .get("o")
        .ok_or_else(|| CliError::usage("gen needs -o <design.pd>"))?;
    let design = generate(&config).map_err(|e| CliError::run(format!("generation failed: {e}")))?;
    let mut buf = Vec::new();
    write_design(&design, &mut buf).map_err(|e| CliError::run(format!("write failed: {e}")))?;
    fsx::atomic_write(Path::new(output), &buf)
        .map_err(|e| CliError::run(format!("cannot write {output}: {e}")))?;
    let s = design.stats();
    let _ = writeln!(
        out,
        "wrote {} ({} cells, {} nets, {} pins, {} macros)",
        output, s.movable_cells, s.nets, s.movable_pins, s.macros
    );
    Ok(())
}

fn cmd_convert(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["o"], &[])?;
    let [aux_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("convert needs exactly one <design.aux>"));
    };
    let output = flags
        .get("o")
        .ok_or_else(|| CliError::usage("convert needs -o <design.pd>"))?;
    // Stream the Bookshelf files through the fsx read hook, so chaos runs
    // exercise the same ingestion path the CLI uses in production.
    let design = puffer_db::bookshelf::read_aux_with(aux_path, &mut |p: &Path| {
        Ok(Box::new(fsx::open_read(p)?) as Box<dyn std::io::BufRead>)
    })
    .map_err(|e| CliError::run(format!("cannot read {aux_path}: {e}")))?;
    design
        .check_macros_placed()
        .map_err(|e| CliError::run(format!("{aux_path}: {e} (is the .pl complete?)")))?;
    let mut buf = Vec::new();
    write_design(&design, &mut buf).map_err(|e| CliError::run(format!("write failed: {e}")))?;
    fsx::atomic_write(Path::new(output), &buf)
        .map_err(|e| CliError::run(format!("cannot write {output}: {e}")))?;
    let s = design.stats();
    let _ = writeln!(
        out,
        "converted {} -> {} ({} cells, {} nets, {} macros)",
        aux_path, output, s.movable_cells, s.nets, s.macros
    );
    Ok(())
}

fn cmd_stats(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[], &[])?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::usage("stats needs exactly one <design.pd>"));
    };
    let design = load_design(path)?;
    let s = design.stats();
    let _ = writeln!(out, "design    : {}", design.name());
    let _ = writeln!(out, "region    : {}", design.region());
    let _ = writeln!(out, "#Macros   : {}", s.macros);
    let _ = writeln!(out, "#Cells    : {}", s.movable_cells);
    let _ = writeln!(out, "#Nets     : {}", s.nets);
    let _ = writeln!(out, "#Pins     : {}", s.movable_pins);
    let _ = writeln!(out, "avg pins/cell : {:.2}", s.avg_pins_per_cell());
    let _ = writeln!(out, "utilization   : {:.3}", design.utilization());
    Ok(())
}

/// Builds the optional telemetry handle for `--metrics` / `--trace-summary`.
fn open_trace(flags: &Flags) -> Result<Option<Trace>, CliError> {
    if let Some(path) = flags.get("metrics") {
        Trace::with_sink(path)
            .map(Some)
            .map_err(|e| CliError::run(format!("cannot create {path}: {e}")))
    } else if flags.has("trace-summary") {
        Ok(Some(Trace::enabled()))
    } else {
        Ok(None)
    }
}

/// Finishes a traced run: emits the span/counter/gauge summary records to
/// the sink, surfaces any deferred sink write error, and prints the
/// per-stage timing table to stderr under `--trace-summary`.
fn finish_trace(trace: &Option<Trace>, flags: &Flags) -> Result<(), CliError> {
    let Some(trace) = trace else { return Ok(()) };
    trace.write_summary();
    trace
        .flush()
        .map_err(|e| CliError::run(format!("metrics write failed: {e}")))?;
    if flags.has("trace-summary") {
        eprint!("{}", trace.summary_table());
    }
    Ok(())
}

/// Parses the bounded-execution flags shared by `place` and `explore`:
/// `--deadline <secs>` (cooperative budget), `--degrade <ladder>` (fidelity
/// step-down schedule; needs a deadline to engage against), and
/// `--watchdog <secs>` (stall window).
/// Parses `--scale-class auto|small|medium|huge`. `auto` (or an absent
/// flag) returns `None`, which lets the flow classify the design by cell
/// count.
fn parse_scale_class(flags: &Flags) -> Result<Option<ScaleClass>, CliError> {
    match flags.get("scale-class") {
        None | Some("auto") => Ok(None),
        Some(token) => token
            .parse::<ScaleClass>()
            .map(Some)
            .map_err(CliError::usage),
    }
}

fn parse_bounded_flags(flags: &Flags) -> Result<BoundedFlags, CliError> {
    let deadline: Option<f64> = flags.get_parsed("deadline")?;
    if let Some(d) = deadline {
        if !d.is_finite() || d <= 0.0 {
            return Err(CliError::usage("--deadline must be positive seconds"));
        }
    }
    let budget = deadline.map(|d| Budget::with_deadline(Duration::from_secs_f64(d)));
    let ladder = match flags.get("degrade") {
        None => None,
        Some(spec) => Some(
            DegradationLadder::parse(spec)
                .map_err(|e| CliError::usage(format!("--degrade: {e}")))?,
        ),
    };
    if ladder.is_some() && budget.is_none() {
        return Err(CliError::usage(
            "--degrade needs --deadline (the ladder engages on remaining budget)",
        ));
    }
    let window: Option<f64> = flags.get_parsed("watchdog")?;
    if let Some(w) = window {
        if !w.is_finite() || w <= 0.0 {
            return Err(CliError::usage("--watchdog must be positive seconds"));
        }
    }
    let watchdog = window.map(|w| StallWatchdog::new(Duration::from_secs_f64(w)));
    Ok(BoundedFlags {
        budget,
        ladder,
        watchdog,
    })
}

/// The parsed bounded-execution flag set.
struct BoundedFlags {
    budget: Option<Budget>,
    ladder: Option<DegradationLadder>,
    watchdog: Option<StallWatchdog>,
}

/// One summary line for a run that stopped early under a budget.
fn degradation_note(out: &mut String, result: &puffer::FlowResult) {
    if !result.cancelled {
        return;
    }
    let steps = if result.degradation.is_empty() {
        "none".to_string()
    } else {
        result
            .degradation
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        out,
        "deadline: stopped early at iteration {} (degradation: {steps}); \
         placement is the legalized best-so-far",
        result.gp_iterations
    );
}

fn cmd_place(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "o",
            "flow",
            "max-iters",
            "journal",
            "checkpoint-every",
            "resume",
            "threads",
            "metrics",
            "deadline",
            "degrade",
            "watchdog",
            "scale-class",
        ],
        &[
            "trace-summary",
            "validate",
            "incremental-congest",
            "no-incremental-congest",
        ],
    )?;
    let [design_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("place needs exactly one <design.pd>"));
    };
    let output = flags
        .get("o")
        .ok_or_else(|| CliError::usage("place needs -o <placed.pl>"))?;
    let max_iters: Option<usize> = flags.get_parsed("max-iters")?;
    let threads: Option<usize> = flags.get_parsed("threads")?;
    if threads == Some(0) {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    let flow = flags.get("flow").unwrap_or("puffer");
    let journal = flags.get("journal");
    let every: usize = flags.get_parsed("checkpoint-every")?.unwrap_or(25);
    let resume = flags.get("resume");
    if flow != "puffer" && (journal.is_some() || resume.is_some()) {
        return Err(CliError::usage(
            "--journal/--resume only apply to --flow puffer",
        ));
    }
    if flow != "puffer" && (flags.get("metrics").is_some() || flags.has("trace-summary")) {
        return Err(CliError::usage(
            "--metrics/--trace-summary only apply to --flow puffer",
        ));
    }
    if flow != "puffer" && flags.has("validate") {
        return Err(CliError::usage("--validate only applies to --flow puffer"));
    }
    if flags.has("incremental-congest") && flags.has("no-incremental-congest") {
        return Err(CliError::usage(
            "--incremental-congest and --no-incremental-congest are mutually exclusive",
        ));
    }
    if flow != "puffer"
        && (flags.has("incremental-congest") || flags.has("no-incremental-congest"))
    {
        return Err(CliError::usage(
            "--incremental-congest/--no-incremental-congest only apply to --flow puffer",
        ));
    }
    let BoundedFlags {
        budget,
        ladder,
        watchdog,
    } = parse_bounded_flags(&flags)?;
    if flow != "puffer" && (budget.is_some() || watchdog.is_some()) {
        return Err(CliError::usage(
            "--deadline/--degrade/--watchdog only apply to --flow puffer",
        ));
    }
    let scale_class = parse_scale_class(&flags)?;
    if flow != "puffer" && scale_class.is_some() {
        return Err(CliError::usage(
            "--scale-class only applies to --flow puffer",
        ));
    }
    let trace = open_trace(&flags)?;
    let design = load_design(design_path)?;
    let result = match flow {
        "puffer" => {
            let mut cfg = PufferConfig::default();
            if let Some(n) = max_iters {
                cfg.placer.max_iters = n;
            }
            if let Some(n) = threads {
                cfg.placer.threads = n;
                cfg.estimator.threads = n;
            }
            // Dirty-region congestion re-estimation is on by default and
            // bit-identical to the full rebuild; --no-incremental-congest
            // is the escape hatch that forces a full rebuild every round.
            if flags.has("no-incremental-congest") {
                cfg.estimator.incremental = false;
            }
            // `auto` (the default) classifies by cell count inside the
            // flow; a forced class overrides it for the whole run.
            cfg.scale_class = scale_class;
            // SIGINT/SIGTERM cancel the flow cooperatively: the run
            // checkpoints (under --journal), legalizes the best-so-far
            // state, writes it, and exits cleanly — never dies mid-write.
            let budget = budget
                .unwrap_or_else(Budget::unbounded)
                .with_token(CancelToken::cancel_on_signal());
            let mut job = Job::new(cfg).with_budget(budget);
            if let Some(t) = &trace {
                job = job.with_trace(t.clone());
            }
            if flags.has("validate") {
                job = job.with_observer(flow_validator());
            }
            if let Some(l) = ladder {
                job = job.with_ladder(l);
            }
            if let Some(w) = watchdog {
                job = job.with_watchdog(w);
            }
            if let Some(from) = resume {
                // Resume keeps journaling: to --journal when given, else
                // back to the journal it resumed from. A torn final record
                // (crash mid-append) is dropped with a warning.
                let policy = CheckpointPolicy {
                    path: journal.unwrap_or(from).into(),
                    every,
                    keep_history: false,
                };
                let recovered = FlowCheckpoint::recover(Path::new(from))
                    .map_err(|e| CliError::run(format!("cannot resume from {from}: {e}")))?;
                if recovered.dropped_torn_tail {
                    eprintln!(
                        "warning: {from}: dropped a torn final record (crash mid-write); \
                         resuming from the last complete checkpoint"
                    );
                }
                job.with_checkpoints(policy)
                    .run_from(&design, recovered.checkpoint)
            } else if let Some(path) = journal {
                let policy = CheckpointPolicy {
                    path: path.into(),
                    every,
                    keep_history: false,
                };
                job.with_checkpoints(policy).run(&design)
            } else {
                job.run(&design)
            }
        }
        "reference" => {
            let mut cfg = ReferenceConfig::default();
            if let Some(n) = max_iters {
                cfg.placer.max_iters = n;
            }
            if let Some(n) = threads {
                cfg.placer.threads = n;
                cfg.router.threads = n;
            }
            ReferencePlacer::new(cfg).place(&design)
        }
        "replace" => {
            let mut cfg = ReplaceConfig::default();
            if let Some(n) = max_iters {
                cfg.placer.max_iters = n;
            }
            if let Some(n) = threads {
                cfg.placer.threads = n;
                cfg.estimator.threads = n;
            }
            ReplacePlacer::new(cfg).place(&design)
        }
        other => return Err(CliError::usage(format!("unknown flow '{other}'"))),
    }
    .map_err(|e| CliError::run(format!("placement failed: {e}")))?;
    finish_trace(&trace, &flags)?;
    let mut buf = Vec::new();
    write_placement(&result.placement, &mut buf)
        .map_err(|e| CliError::run(format!("write failed: {e}")))?;
    fsx::atomic_write(Path::new(output), &buf)
        .map_err(|e| CliError::run(format!("cannot write {output}: {e}")))?;
    let _ = writeln!(
        out,
        "wrote {} (HPWL {:.0}, {} GP iterations, {} padding rounds, {:.1}s)",
        output, result.hpwl, result.gp_iterations, result.pad_rounds, result.runtime_s
    );
    degradation_note(out, &result);
    Ok(())
}

fn cmd_eval(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["maps", "threads", "metrics", "deadline"],
        &["layers", "trace-summary", "validate"],
    )?;
    let [design_path, placement_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("eval needs <design.pd> <placed.pl>"));
    };
    let threads: Option<usize> = flags.get_parsed("threads")?;
    if threads == Some(0) {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    // SIGINT/SIGTERM stop refinement cooperatively between rip-up rounds;
    // the report then describes the best routing so far.
    let budget = parse_bounded_flags(&flags)?
        .budget
        .unwrap_or_else(Budget::unbounded)
        .with_token(CancelToken::cancel_on_signal());
    let design = load_design(design_path)?;
    let placement = load_placement(placement_path, design.netlist().num_cells())?;
    let mut router_cfg = RouterConfig::default();
    if let Some(n) = threads {
        router_cfg.threads = n;
    }
    let trace = open_trace(&flags)?;
    let report = evaluate_bounded(
        &design,
        &placement,
        &router_cfg,
        &budget,
        trace.as_ref().unwrap_or(&Trace::disabled()),
    );
    finish_trace(&trace, &flags)?;
    if flags.has("validate") {
        design
            .validate()
            .map_err(|r| CliError::run(r.to_string()))?;
        report
            .congestion
            .validate()
            .map_err(|r| CliError::run(r.to_string()))?;
        let _ = writeln!(out, "validate OK: design and congestion map invariants hold");
    }
    let _ = writeln!(
        out,
        "HOF {:.2}%  VOF {:.2}%  WL {:.0}  ({} overflowed Gcells; 1%-criterion: {})",
        report.hof_pct,
        report.vof_pct,
        report.wirelength,
        report.overflow_gcells,
        if report.passes() { "PASS" } else { "FAIL" }
    );
    if flags.has("layers") {
        let assignment = assign_layers(&design, &report.paths, &LayerConfig::default());
        let _ = writeln!(out, "layer assignment ({} vias):", assignment.vias);
        for l in &assignment.layers {
            let _ = writeln!(
                out,
                "  {:<4} {}  usage {:>10.1}  overflow {:>6.3}%",
                l.name,
                l.direction,
                l.usage.sum(),
                l.overflow_ratio * 100.0
            );
        }
    }
    if let Some(dir) = flags.get("maps") {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::run(format!("cannot create {dir}: {e}")))?;
        for (horizontal, tag) in [(true, "h"), (false, "v")] {
            let base = Path::new(dir).join(format!("congestion_{tag}"));
            fsx::atomic_write(
                &base.with_extension("csv"),
                report.congestion.to_csv(horizontal).as_bytes(),
            )
            .map_err(|e| CliError::run(format!("write failed: {e}")))?;
            fsx::atomic_write(
                &base.with_extension("pgm"),
                &report.congestion.to_pgm(horizontal),
            )
            .map_err(|e| CliError::run(format!("write failed: {e}")))?;
        }
        let _ = writeln!(out, "wrote congestion maps to {dir}/");
    }
    Ok(())
}

/// `puffer trace <run.jsonl>` — validates a telemetry file and prints the
/// record inventory. With `--check` it additionally requires the stage
/// spans and per-iteration records a complete `place --metrics` run emits
/// (this is what the CI metrics smoke step calls).
fn cmd_trace(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &[], &["check"])?;
    let [path] = flags.positional.as_slice() else {
        return Err(CliError::usage("trace needs exactly one <run.jsonl>"));
    };
    let records = puffer_trace::read_jsonl(Path::new(path))
        .map_err(|e| CliError::run(format!("invalid metrics file {path}: {e}")))?;
    if records.is_empty() {
        return Err(CliError::run(format!("{path}: no telemetry records")));
    }
    let mut kinds: Vec<(String, usize)> = Vec::new();
    for r in &records {
        let Some(kind) = r.kind() else {
            return Err(CliError::run(format!(
                "{path}: record without a \"t\" kind field"
            )));
        };
        if r.num("elapsed_s").is_none() {
            return Err(CliError::run(format!(
                "{path}: {kind} record missing the elapsed_s timestamp"
            )));
        }
        match kinds.iter_mut().find(|(k, _)| k == kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((kind.to_string(), 1)),
        }
    }
    for (k, n) in &kinds {
        let _ = writeln!(out, "{k:<16} {n:>7}");
    }
    let _ = writeln!(out, "{:<16} {:>7}", "total", records.len());
    if flags.has("check") {
        let span_labels: Vec<&str> = records
            .iter()
            .filter(|r| r.kind() == Some("span"))
            .filter_map(|r| r.str_field("label"))
            .collect();
        for stage in ["init", "gp", "legal"] {
            if !span_labels.contains(&stage) {
                return Err(CliError::run(format!(
                    "{path}: missing stage span '{stage}'"
                )));
            }
        }
        for kind in ["place.iter", "flow.done"] {
            if !kinds.iter().any(|(k, _)| k == kind) {
                return Err(CliError::run(format!("{path}: missing {kind} records")));
            }
        }
        let _ = writeln!(out, "check OK: stage spans and flow records complete");
    }
    Ok(())
}

fn cmd_draw(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["o"], &["rows"])?;
    let [design_path, placement_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("draw needs <design.pd> <placed.pl>"));
    };
    let output = flags.get("o").ok_or_else(|| CliError::usage("draw needs -o <out.svg>"))?;
    let design = load_design(design_path)?;
    let placement = load_placement(placement_path, design.netlist().num_cells())?;
    let svg = puffer_db::svg::render_svg(
        &design,
        &placement,
        &puffer_db::svg::SvgOptions {
            draw_rows: flags.has("rows"),
            ..puffer_db::svg::SvgOptions::default()
        },
    );
    fsx::atomic_write(Path::new(output), svg.as_bytes())
        .map_err(|e| CliError::run(format!("write failed: {e}")))?;
    let _ = writeln!(out, "wrote {output}");
    Ok(())
}

fn cmd_refine(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["o", "deadline", "scale-class"], &["guard"])?;
    let [design_path, placement_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("refine needs <design.pd> <placed.pl>"));
    };
    let output = flags
        .get("o")
        .ok_or_else(|| CliError::usage("refine needs -o <refined.pl>"))?;
    let budget = parse_bounded_flags(&flags)?.budget;
    let design = load_design(design_path)?;
    let placement = load_placement(placement_path, design.netlist().num_cells())?;
    let zeros = vec![0u32; design.netlist().num_cells()];
    // Size-aware windowing: huge designs refine with a narrow window and a
    // single pass so detailed placement stays linear-ish in cell count.
    let class = parse_scale_class(&flags)?
        .unwrap_or_else(|| ScaleClass::classify(design.netlist().num_cells()));
    let dp_config = DetailedConfig {
        window: class.dp_window(),
        max_passes: class.dp_passes(),
        ..DetailedConfig::default()
    };
    let outcome = if let Some(b) = &budget {
        let congestion = if flags.has("guard") {
            Some(evaluate(&design, &placement).congestion)
        } else {
            None
        };
        refine_bounded(
            &design,
            &placement,
            &zeros,
            &dp_config,
            congestion.as_ref(),
            b,
        )
    } else if flags.has("guard") {
        let report = evaluate(&design, &placement);
        refine_with_congestion(
            &design,
            &placement,
            &zeros,
            &dp_config,
            &report.congestion,
        )
    } else {
        refine(&design, &placement, &zeros, &dp_config)
    }
    .map_err(|e| CliError::run(format!("refinement failed: {e}")))?;
    let mut buf = Vec::new();
    write_placement(&outcome.placement, &mut buf)
        .map_err(|e| CliError::run(format!("write failed: {e}")))?;
    fsx::atomic_write(Path::new(output), &buf)
        .map_err(|e| CliError::run(format!("cannot write {output}: {e}")))?;
    let _ = writeln!(
        out,
        "wrote {} (HPWL {:.0} -> {:.0}, {} moves)",
        output, outcome.hpwl_before, outcome.hpwl_after, outcome.moves
    );
    Ok(())
}

/// `puffer explore <design.pd>` — SMBO strategy exploration (§III-C) over
/// the padding-parameter space. Each trial runs a short PUFFER flow with
/// the candidate strategy and scores it by routed overflow; `--deadline`
/// bounds the whole search cooperatively and `--degrade cap-trials@<f>`
/// caps the remaining trials as the deadline nears.
fn cmd_explore(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["trials", "max-iters", "deadline", "degrade", "metrics"],
        &["trace-summary"],
    )?;
    let [design_path] = flags.positional.as_slice() else {
        return Err(CliError::usage("explore needs exactly one <design.pd>"));
    };
    let trials: usize = flags.get_parsed("trials")?.unwrap_or(12);
    if trials == 0 {
        return Err(CliError::usage("--trials must be at least 1"));
    }
    let max_iters: usize = flags.get_parsed("max-iters")?.unwrap_or(60);
    let bounded = parse_bounded_flags(&flags)?;
    let ladder = bounded.ladder;
    let budget = bounded.budget;
    let budget = budget.unwrap_or_else(Budget::unbounded);
    let mut ladder_state = ladder.map(LadderState::new);
    let design = load_design(design_path)?;
    let trace = open_trace(&flags)?;
    let space = puffer::strategy_space();
    let config = ExplorationConfig {
        max_evals: trials,
        ..ExplorationConfig::default()
    };
    let objective = |values: &[f64]| -> f64 {
        let mut cfg = PufferConfig::default();
        cfg.placer.max_iters = max_iters;
        cfg.strategy = puffer::tuned_strategy(&space, values);
        // Trials share the search budget, so a mid-trial expiry returns the
        // trial's best-so-far quickly instead of overrunning the deadline.
        match PufferPlacer::new(cfg).with_budget(budget.clone()).place(&design) {
            Ok(result) => {
                let report = evaluate(&design, &result.placement);
                report.hof_pct + report.vof_pct
            }
            // Non-finite objectives are counted as failed trials.
            Err(_) => f64::NAN,
        }
    };
    let outcome = explore_params_bounded(
        &space,
        objective,
        &config,
        trace.as_ref().unwrap_or(&Trace::disabled()),
        &budget,
        ladder_state.as_mut(),
    )
    .map_err(|e| CliError::run(format!("exploration failed: {e}")))?;
    finish_trace(&trace, &flags)?;
    let _ = writeln!(
        out,
        "explore: best overflow score {:.4} after {} trial(s) ({} failed{})",
        outcome.best_value,
        outcome.evals,
        outcome.failed_trials,
        if outcome.stopped_early {
            ", stopped early"
        } else {
            ""
        }
    );
    for (param, value) in space.params().iter().zip(&outcome.best) {
        let _ = writeln!(out, "  {:<24} {value:.4}", param.name);
    }
    Ok(())
}

/// `puffer serve` — the long-running job daemon (and its chaos harness).
///
/// Daemon mode accepts newline-delimited JSON requests (`submit`, `cancel`,
/// `status`, `wait`, `ping`, `drain`, `shutdown`) over TCP (`--listen`) or
/// stdin (`--stdin`), runs jobs on a bounded worker pool with per-job
/// journals under `--journal-dir`, and re-enqueues interrupted jobs on the
/// next start. SIGINT/SIGTERM drain gracefully. `--chaos` instead runs the
/// seeded fault-injection harness over the same engine and asserts the
/// three-legal-end-states contract.
fn cmd_serve(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "listen",
            "journal-dir",
            "workers",
            "queue",
            "checkpoint-every",
            "retries",
            "backoff-ms",
            "seeds",
            "cells",
            "max-iters",
        ],
        &["stdin", "chaos"],
    )?;
    if !flags.positional.is_empty() {
        return Err(CliError::usage("serve takes no positional arguments"));
    }
    let workers: usize = flags.get_parsed("workers")?.unwrap_or(2);
    if workers == 0 {
        return Err(CliError::usage("--workers must be at least 1"));
    }
    if flags.has("chaos") {
        if flags.get("listen").is_some() || flags.has("stdin") {
            return Err(CliError::usage(
                "--chaos runs in-process; --listen/--stdin do not apply",
            ));
        }
        let seeds: u64 = flags.get_parsed("seeds")?.unwrap_or(8);
        if seeds == 0 {
            return Err(CliError::usage("--seeds must be at least 1"));
        }
        let mut cfg = ChaosConfig {
            seeds,
            cells: flags.get_parsed("cells")?.unwrap_or(200),
            max_iters: flags.get_parsed("max-iters")?.unwrap_or(120),
            workers,
            ..ChaosConfig::default()
        };
        if let Some(dir) = flags.get("journal-dir") {
            cfg.dir = dir.into();
        }
        let summary = run_chaos(&cfg, |line| {
            out.push_str(line);
            out.push('\n');
        })
        .map_err(CliError::run)?;
        let _ = writeln!(
            out,
            "serve chaos OK: {} round(s) ({} worker-panic, {} journal-write, {} disconnect, \
             {} kill-restart, {} disk-full, {} rename-restart), {} job(s) completed, \
             {} structured error(s); every job ended in a legal end state",
            summary.rounds,
            summary.injections[0],
            summary.injections[1],
            summary.injections[2],
            summary.injections[3],
            summary.injections[4],
            summary.injections[5],
            summary.completed,
            summary.failed
        );
        return Ok(());
    }
    for flag in ["seeds", "cells", "max-iters"] {
        if flags.get(flag).is_some() {
            return Err(CliError::usage(format!(
                "--{flag} only applies to serve --chaos"
            )));
        }
    }
    let journal_dir = flags
        .get("journal-dir")
        .ok_or_else(|| CliError::usage("serve needs --journal-dir <dir> (or --chaos)"))?;
    let queue: usize = flags.get_parsed("queue")?.unwrap_or(16);
    if queue == 0 {
        return Err(CliError::usage("--queue must be at least 1"));
    }
    let every: usize = flags.get_parsed("checkpoint-every")?.unwrap_or(10);
    if every == 0 {
        return Err(CliError::usage("--checkpoint-every must be at least 1"));
    }
    let retries: usize = flags.get_parsed("retries")?.unwrap_or(3);
    if retries == 0 {
        return Err(CliError::usage(
            "--retries must be at least 1 (the first attempt counts)",
        ));
    }
    let backoff_ms: u64 = flags.get_parsed("backoff-ms")?.unwrap_or(50);
    let listen = flags.get("listen");
    if listen.is_some() == flags.has("stdin") {
        return Err(CliError::usage(
            "serve needs exactly one of --listen <addr> or --stdin",
        ));
    }
    let cfg = ServeConfig {
        workers,
        queue_capacity: queue,
        journal_dir: journal_dir.into(),
        checkpoint_every: every,
        max_attempts: retries,
        backoff: Duration::from_millis(backoff_ms),
        trace: Trace::disabled(),
    };
    if let Some(addr) = listen {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| CliError::run(format!("cannot listen on {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| CliError::run(format!("cannot resolve listen address: {e}")))?;
        // SIGINT/SIGTERM drain the daemon: stop admitting, finish every
        // accepted job, exit.
        let signal = CancelToken::cancel_on_signal();
        // Announce readiness on stdout *now*, before blocking in the accept
        // loop — clients (and the integration test) parse this line to learn
        // the bound port under `--listen 127.0.0.1:0`.
        let ready = JsonLine::new("serve.ready")
            .str("addr", &local.to_string())
            .int("workers", workers as i64)
            .int("queue", queue as i64)
            .finish();
        println!("{ready}");
        let _ = std::io::stdout().flush();
        let outcome = Engine::run(cfg, |h| serve_listener(h, &listener, &signal))
            .map_err(|e| CliError::run(format!("serve failed: {e}")))?
            .map_err(|e| CliError::run(format!("serve transport failed: {e}")))?;
        let _ = writeln!(
            out,
            "serve: {}",
            match outcome {
                ServerOutcome::Drained => "drained (all accepted jobs completed)",
                ServerOutcome::Shutdown => "shutdown (interrupted jobs are resumable)",
                ServerOutcome::Signalled => "signalled, drained (all accepted jobs completed)",
            }
        );
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let action = Engine::run(cfg, |h| serve_lines(h, stdin.lock(), stdout.lock()))
            .map_err(|e| CliError::run(format!("serve failed: {e}")))?
            .map_err(|e| CliError::run(format!("serve transport failed: {e}")))?;
        let _ = writeln!(
            out,
            "serve: {}",
            match action {
                Action::Shutdown => "shutdown (interrupted jobs are resumable)",
                _ => "drained (all accepted jobs completed)",
            }
        );
    }
    Ok(())
}

/// `puffer chaos` — the deterministic fault-injection harness. Every seed
/// deterministically picks a fault class (`seed % classes`), injection
/// point, and magnitude, drives an instrumented flow, and asserts the
/// bounded-execution contract: a valid degraded result, a resumable
/// checkpoint, or a structured error — never a hang or a corrupt artifact.
///
/// `--classes` restricts the dispatch set: `flow` (worker-panic, nan-burst,
/// slow-stage, journal-write), `fs` (the `fsx` filesystem faults:
/// disk-full, torn-write, fsync-fail, rename-fail, short-read), or `all`
/// (default).
fn cmd_chaos(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["seeds", "cells", "max-iters", "classes"], &[])?;
    if !flags.positional.is_empty() {
        return Err(CliError::usage("chaos takes no positional arguments"));
    }
    let seeds: u64 = flags.get_parsed("seeds")?.unwrap_or(8);
    if seeds == 0 {
        return Err(CliError::usage("--seeds must be at least 1"));
    }
    let cells: usize = flags.get_parsed("cells")?.unwrap_or(250);
    let max_iters: usize = flags.get_parsed("max-iters")?.unwrap_or(60);
    let classes: &[FaultClass] = match flags.get("classes").unwrap_or("all") {
        "all" => &FaultClass::ALL,
        "flow" => &FaultClass::FLOW,
        "fs" => &FaultClass::FS,
        other => {
            return Err(CliError::usage(format!(
                "--classes must be all, flow, or fs (got '{other}')"
            )))
        }
    };
    let dir = std::env::temp_dir().join("puffer-chaos");
    let mut exercised: Vec<&str> = Vec::new();
    for seed in 0..seeds {
        let class = classes[(seed % classes.len() as u64) as usize];
        let mut rng = StdRng::seed_from_u64(0xC4A05 ^ seed);
        let at: usize = rng.gen_range(2..10);
        let magnitude: usize = rng.gen_range(5..30);
        let verdict = run_chaos_case(seed, class, at, magnitude, cells, max_iters, &dir)?;
        let _ = writeln!(out, "seed {seed:>2} {:<13} {verdict}", class.as_str());
        if !exercised.contains(&class.as_str()) {
            exercised.push(class.as_str());
        }
    }
    let _ = writeln!(
        out,
        "chaos OK: {seeds} seed(s), {} fault class(es) exercised, every injection \
         yielded a valid degraded result, a resumable checkpoint, or a structured error",
        exercised.len()
    );
    Ok(())
}

/// Drives one chaos injection and verifies its contract; the `Ok` string
/// describes what was checked, `Err` is a contract violation.
fn run_chaos_case(
    seed: u64,
    class: FaultClass,
    at: usize,
    magnitude: usize,
    cells: usize,
    max_iters: usize,
    dir: &Path,
) -> Result<String, CliError> {
    let case_dir = dir.join(format!("seed{seed}"));
    std::fs::create_dir_all(&case_dir)
        .map_err(|e| CliError::run(format!("cannot create {}: {e}", case_dir.display())))?;
    let fail =
        |m: String| CliError::run(format!("chaos seed {seed} ({}): {m}", class.as_str()));
    let design = generate(&GeneratorConfig {
        name: format!("chaos{seed}"),
        num_cells: cells,
        num_nets: cells + cells / 10,
        utilization: 0.6,
        hotspot: 0.5,
        seed: 9000 + seed,
        ..GeneratorConfig::default()
    })
    .map_err(|e| fail(format!("generation failed: {e}")))?;
    let zeros = vec![0u32; design.netlist().num_cells()];
    let flow_config = || {
        let mut cfg = PufferConfig::default();
        cfg.placer.max_iters = max_iters;
        cfg
    };

    match class {
        FaultClass::WorkerPanic => {
            // One SMBO objective call panics; the run must isolate it as a
            // failed trial and still return an outcome.
            let space = puffer::strategy_space();
            let config = ExplorationConfig {
                max_evals: 6,
                ..ExplorationConfig::default()
            };
            let panic_at = at % 5;
            let mut trial = 0usize;
            let outcome = explore_params_bounded(
                &space,
                |values| {
                    let i = trial;
                    trial += 1;
                    // assert! (not the banned panic! token) fires only on
                    // the injected trial.
                    assert!(i != panic_at, "chaos: injected worker panic");
                    values.iter().map(|v| (v - 1.0) * (v - 1.0)).sum::<f64>()
                },
                &config,
                &Trace::disabled(),
                &Budget::unbounded(),
                None,
            )
            .map_err(|e| fail(format!("exploration died instead of isolating the panic: {e}")))?;
            if outcome.failed_trials == 0 {
                return Err(fail("panic was not recorded as a failed trial".into()));
            }
            Ok(format!(
                "OK: panic isolated ({} trials, {} failed)",
                outcome.evals, outcome.failed_trials
            ))
        }
        FaultClass::NanBurst | FaultClass::SlowStage => {
            let journal = case_dir.join("run.pj");
            let metrics = case_dir.join("run.jsonl");
            let trace = Trace::with_sink(&metrics)
                .map_err(|e| fail(format!("cannot create metrics sink: {e}")))?;
            let policy = CheckpointPolicy {
                path: journal.clone(),
                every: 10,
                keep_history: false,
            };
            let mut placer = PufferPlacer::new(flow_config())
                .with_trace(trace.clone())
                .with_chaos(ChaosPlan {
                    class,
                    at,
                    magnitude,
                });
            if class == FaultClass::SlowStage {
                placer = placer.with_watchdog(StallWatchdog::new(Duration::from_millis(100)));
            }
            let result = placer
                .place_with_checkpoints(&design, &policy)
                .map_err(|e| fail(format!("flow must degrade, not fail: {e}")))?;
            trace.write_summary();
            trace
                .flush()
                .map_err(|e| fail(format!("metrics write failed: {e}")))?;
            check_legal(&design, &result.placement, &zeros)
                .map_err(|e| fail(format!("degraded placement is not legal: {e}")))?;
            audit_run(&journal, &metrics)
                .map_err(|r| fail(format!("journal/metrics inconsistent: {r}")))?;
            match class {
                FaultClass::SlowStage => {
                    if !result.cancelled {
                        return Err(fail("watchdog did not demote the stalled stage".into()));
                    }
                    Ok(format!(
                        "OK: watchdog degraded at iteration {}, artifacts audit clean",
                        result.gp_iterations
                    ))
                }
                _ => Ok("OK: sentinel recovered the burst, artifacts audit clean".to_string()),
            }
        }
        FaultClass::JournalWrite => {
            let journal = case_dir.join("run.pj");
            let policy = CheckpointPolicy {
                path: journal.clone(),
                every: 2,
                keep_history: false,
            };
            // Fire strictly after the first committed checkpoint so there
            // is a prior journal to fall back to.
            let fire_at = at.max(4);
            let err = PufferPlacer::new(flow_config())
                .with_chaos(ChaosPlan {
                    class,
                    at: fire_at,
                    magnitude,
                })
                .place_with_checkpoints(&design, &policy);
            let Err(e) = err else {
                return Err(fail("injected journal failure did not surface".into()));
            };
            if !matches!(e, puffer::PufferError::Journal(_)) {
                return Err(fail(format!("wrong error class: {e}")));
            }
            let checkpoint = FlowCheckpoint::load(&journal)
                .map_err(|e| fail(format!("prior journal corrupted by half-write: {e}")))?;
            checkpoint
                .validate()
                .map_err(|r| fail(format!("prior journal invalid: {r}")))?;
            let resumed = PufferPlacer::new(flow_config())
                .resume(&design, &journal)
                .map_err(|e| fail(format!("resume from prior journal failed: {e}")))?;
            check_legal(&design, &resumed.placement, &zeros)
                .map_err(|e| fail(format!("resumed placement is not legal: {e}")))?;
            Ok(format!(
                "OK: half-write left prior journal valid, resume completed ({} iterations)",
                resumed.gp_iterations
            ))
        }
        FaultClass::DiskFull | FaultClass::TornWrite | FaultClass::RenameFail => {
            // A filesystem fault strikes a checkpoint save mid-run. The
            // fsx hook fires once at a seeded guarded operation; the save
            // must surface a structured Journal error while the previously
            // committed journal stays valid and resumable.
            let journal = case_dir.join("run.pj");
            let _ = std::fs::remove_file(&journal);
            let policy = CheckpointPolicy {
                path: journal.clone(),
                every: 2,
                keep_history: false,
            };
            // Each save is exactly one atomic_write: 1 data write, 2
            // fsyncs (file + parent dir), 1 rename. Skip past the first
            // committed save so there is a prior journal to fall back to.
            let per_save = match class {
                FaultClass::DiskFull => 2, // matches writes AND renames
                _ => 1,
            };
            let skip = per_save + (at % 3) * per_save;
            fsx::fault::arm(class, skip);
            let outcome = PufferPlacer::new(flow_config()).place_with_checkpoints(&design, &policy);
            let fired = !fsx::fault::armed();
            fsx::fault::disarm();
            if !fired {
                return Err(fail("armed filesystem fault never fired".into()));
            }
            let Err(e) = outcome else {
                return Err(fail("injected filesystem failure did not surface".into()));
            };
            if !matches!(e, puffer::PufferError::Journal(_)) {
                return Err(fail(format!("wrong error class: {e}")));
            }
            let checkpoint = FlowCheckpoint::load(&journal)
                .map_err(|e| fail(format!("prior journal corrupted by failed save: {e}")))?;
            checkpoint
                .validate()
                .map_err(|r| fail(format!("prior journal invalid: {r}")))?;
            let resumed = PufferPlacer::new(flow_config())
                .resume(&design, &journal)
                .map_err(|e| fail(format!("resume from prior journal failed: {e}")))?;
            check_legal(&design, &resumed.placement, &zeros)
                .map_err(|e| fail(format!("resumed placement is not legal: {e}")))?;
            Ok(format!(
                "OK: failed save left prior journal valid, resume completed ({} iterations)",
                resumed.gp_iterations
            ))
        }
        FaultClass::FsyncFail => {
            // The metrics sink's final fsync fails. The flow result stands,
            // and the failure must surface as a structured TraceError from
            // flush — never a silently dropped record.
            let metrics = case_dir.join("metrics.jsonl");
            let trace = Trace::with_sink(&metrics)
                .map_err(|e| fail(format!("cannot create metrics sink: {e}")))?;
            // Guarded fsyncs in this run: the sink directory fsync already
            // happened at creation; the next one is the flush itself.
            fsx::fault::arm(class, 0);
            let result = PufferPlacer::new(flow_config())
                .with_trace(trace.clone())
                .place(&design);
            let flushed = trace.flush();
            let fired = !fsx::fault::armed();
            fsx::fault::disarm();
            if !fired {
                return Err(fail("armed fsync fault never fired".into()));
            }
            let result = result.map_err(|e| fail(format!("flow failed under fsync fault: {e}")))?;
            check_legal(&design, &result.placement, &zeros)
                .map_err(|e| fail(format!("placement is not legal: {e}")))?;
            let Err(te) = flushed else {
                return Err(fail("fsync failure did not surface from flush".into()));
            };
            if !matches!(te, puffer_trace::TraceError::Io { .. }) {
                return Err(fail(format!("wrong trace error shape: {te}")));
            }
            // The records themselves are intact: the sink wrote each line
            // before the failed durability barrier.
            let records = puffer_trace::read_jsonl(&metrics)
                .map_err(|e| fail(format!("metrics unreadable after fsync fault: {e}")))?;
            if records.is_empty() {
                return Err(fail("metrics lost despite per-record writes".into()));
            }
            Ok(format!(
                "OK: fsync failure surfaced as structured TraceError, {} records intact",
                records.len()
            ))
        }
        FaultClass::ShortRead => {
            // A guarded read dies while the streaming Bookshelf parser is
            // mid-way through the .nets file. The parser must surface a
            // structured DbError carrying the file and line — never hand
            // back a partial netlist.
            let nl = design.netlist();
            let mut nodes = String::from("UCLA nodes 1.0\n");
            for (_, c) in nl.iter_cells() {
                let tag = if c.is_movable() { "" } else { " terminal" };
                let _ = writeln!(nodes, "{} {} {}{tag}", c.name, c.width, c.height);
            }
            let mut nets = String::from("UCLA nets 1.0\n");
            for (id, net) in nl.iter_nets() {
                let _ = writeln!(nets, "NetDegree : {} {}", nl.net_degree(id), net.name);
                for &pid in nl.net_pins(id) {
                    let pin = nl.pin(pid);
                    let _ = writeln!(
                        nets,
                        " {} B : {} {}",
                        nl.cell(pin.cell).name,
                        pin.offset.x,
                        pin.offset.y
                    );
                }
            }
            let nodes_path = case_dir.join("chaos.nodes");
            let nets_path = case_dir.join("chaos.nets");
            fsx::atomic_write(&nodes_path, nodes.as_bytes())
                .map_err(|e| fail(format!("cannot write fixture: {e}")))?;
            fsx::atomic_write(&nets_path, nets.as_bytes())
                .map_err(|e| fail(format!("cannot write fixture: {e}")))?;
            let parse = |guard_nets: bool| -> Result<_, puffer_db::DbError> {
                use std::io::BufRead;
                let nodes = std::io::BufReader::new(std::fs::File::open(&nodes_path)?);
                let nets: Box<dyn BufRead> = if guard_nets {
                    Box::new(fsx::open_read(&nets_path)?)
                } else {
                    Box::new(std::io::BufReader::new(std::fs::File::open(&nets_path)?))
                };
                puffer_db::bookshelf::parse_bookshelf_streaming(
                    "chaos", nodes, nets, &b""[..], &b""[..],
                )
            };
            // Control: the unfaulted streaming parse reproduces the design.
            let control = parse(false)
                .map_err(|e| fail(format!("control parse must succeed: {e}")))?;
            if control.stats().nets != design.stats().nets {
                return Err(fail("control parse lost nets".into()));
            }
            // The guarded .nets reader sees at least two read calls (data
            // + EOF probe), so a skip of 0 or 1 always fires mid-parse.
            fsx::fault::arm(class, at % 2);
            let outcome = parse(true);
            let fired = !fsx::fault::armed();
            fsx::fault::disarm();
            if !fired {
                return Err(fail("armed short-read fault never fired".into()));
            }
            let Err(e) = outcome else {
                return Err(fail(
                    "truncated read produced a design instead of an error".into(),
                ));
            };
            match e {
                puffer_db::DbError::Read { ref file, line, .. } => Ok(format!(
                    "OK: short read surfaced as structured DbError ({file} after line {line}), \
                     no partial netlist",
                )),
                other => Err(fail(format!("wrong error class: {other}"))),
            }
        }
    }
}

/// `puffer lint [--root <dir>] [--json]` — runs the workspace policy
/// check (see [`puffer_audit::lint`]) and exits non-zero when any
/// unwaived finding remains. This is the CI gate. With `--json` the
/// findings come out as JSONL (one flat object per line) and the human
/// summary line is suppressed, for tooling that consumes the gate.
fn cmd_lint(args: &[String], out: &mut String) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["root"], &["json"])?;
    if !flags.positional.is_empty() {
        return Err(CliError::usage("lint takes no positional arguments"));
    }
    let root = flags.get("root").unwrap_or(".");
    let report = lint_workspace(&LintConfig {
        root: Path::new(root).to_path_buf(),
    })
    .map_err(|e| CliError::run(format!("lint failed: {e}")))?;
    if flags.has("json") {
        out.push_str(&report.json_lines());
    } else {
        for finding in &report.findings {
            let _ = writeln!(out, "{finding}");
        }
        let _ = writeln!(
            out,
            "lint: {} files in {} crates, {} finding(s), {} waived",
            report.files_scanned,
            report.crates_scanned,
            report.findings.len(),
            report.waived
        );
    }
    if report.findings.is_empty() {
        Ok(())
    } else {
        Err(CliError::run(format!(
            "{} lint finding(s); fix them or waive with a justification in lint-allow.toml",
            report.findings.len()
        )))
    }
}

/// `puffer audit <design|journal|metrics|run> <files..>` — deep invariant
/// verification of on-disk artifacts (see [`puffer_audit::validate`]).
fn cmd_audit(args: &[String], out: &mut String) -> Result<(), CliError> {
    const AUDIT_USAGE: &str = "audit needs: design <design.pd> | journal <run.pj> \
                               [<design.pd>] | metrics <run.jsonl> | run <run.pj> <run.jsonl>";
    let flags = Flags::parse(args, &[], &[])?;
    let positional: Vec<&str> = flags.positional.iter().map(String::as_str).collect();
    match positional.as_slice() {
        ["design", path] => {
            let design = load_design(path)?;
            design.validate().map_err(|r| CliError::run(r.to_string()))?;
            let s = design.stats();
            let _ = writeln!(
                out,
                "audit OK: design '{}' ({} cells, {} nets, {} pins)",
                design.name(),
                s.movable_cells,
                s.nets,
                s.movable_pins
            );
            Ok(())
        }
        ["journal", path, rest @ ..] if rest.len() <= 1 => {
            let checkpoint = FlowCheckpoint::load(Path::new(path))
                .map_err(|e| CliError::run(format!("cannot read {path}: {e}")))?;
            checkpoint
                .validate()
                .map_err(|r| CliError::run(r.to_string()))?;
            if let [design_path] = rest {
                let design = load_design(design_path)?;
                checkpoint
                    .matches(&design)
                    .map_err(|e| CliError::run(format!("journal does not fit the design: {e}")))?;
            }
            let _ = writeln!(
                out,
                "audit OK: checkpoint of '{}' at iteration {} ({} cells)",
                checkpoint.design_name, checkpoint.placer.iter, checkpoint.num_cells
            );
            Ok(())
        }
        ["metrics", path] => {
            let summary =
                audit_metrics(Path::new(path)).map_err(|r| CliError::run(r.to_string()))?;
            let _ = writeln!(
                out,
                "audit OK: {} records ({} GP iterations, {} pad rounds{})",
                summary.records,
                summary.last_iter.unwrap_or(0),
                summary.pad_rounds,
                match summary.gcells {
                    Some(g) => format!(", {g} Gcells"),
                    None => String::new(),
                }
            );
            Ok(())
        }
        ["run", journal, metrics] => {
            let summary = audit_run(Path::new(journal), Path::new(metrics))
                .map_err(|r| CliError::run(r.to_string()))?;
            let _ = writeln!(
                out,
                "audit OK: journal and metrics are consistent ({} records)",
                summary.records
            );
            Ok(())
        }
        _ => Err(CliError::usage(AUDIT_USAGE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("puffer-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        let mut out = String::new();
        run(&strs(&["help"]), &mut out).unwrap();
        assert!(out.contains("usage:"));
        let err = run(&strs(&["bogus"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&[], &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn gen_requires_output_and_validates_preset() {
        let err = run(&strs(&["gen", "--preset", "or1200"]), &mut String::new()).unwrap_err();
        assert!(err.message.contains("-o"));
        let err = run(
            &strs(&["gen", "--preset", "nope", "-o", &tmp("x.pd")]),
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.message.contains("unknown preset"));
    }

    #[test]
    fn incremental_congest_flags_are_mutually_exclusive_and_puffer_only() {
        let design_path = tmp("incflags.pd");
        run(
            &strs(&["gen", "--cells", "60", "--nets", "60", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let out_path = tmp("incflags.pl");
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_path,
                "--incremental-congest",
                "--no-incremental-congest",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("mutually exclusive"));
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_path,
                "--flow",
                "reference",
                "--no-incremental-congest",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--flow puffer"));
    }

    #[test]
    fn forced_small_scale_class_is_byte_identical_to_auto() {
        // Golden check for the strategy ladder: on a design that `auto`
        // already classifies as small, forcing `--scale-class small` must
        // not perturb the run at all — journal and placement byte-for-byte.
        let design_path = tmp("scale_golden.pd");
        run(
            &strs(&[
                "gen",
                "--cells",
                "120",
                "--nets",
                "130",
                "--utilization",
                "0.6",
                "--seed",
                "11",
                "-o",
                &design_path,
            ]),
            &mut String::new(),
        )
        .unwrap();
        let place = |tag: &str, extra: &[&str]| -> (Vec<u8>, Vec<u8>) {
            let out_path = tmp(&format!("scale_golden_{tag}.pl"));
            let journal = tmp(&format!("scale_golden_{tag}.pj"));
            let mut args = strs(&[
                "place",
                &design_path,
                "-o",
                &out_path,
                "--max-iters",
                "40",
                "--journal",
                &journal,
            ]);
            args.extend(strs(extra));
            run(&args, &mut String::new()).unwrap();
            (
                std::fs::read(&out_path).unwrap(),
                std::fs::read(&journal).unwrap(),
            )
        };
        let (auto_pl, auto_pj) = place("auto", &[]);
        let (forced_pl, forced_pj) = place("forced", &["--scale-class", "small"]);
        assert_eq!(auto_pl, forced_pl, "placement bytes diverged");
        assert_eq!(auto_pj, forced_pj, "journal bytes diverged");
        let journal_text = String::from_utf8(auto_pj).unwrap();
        assert!(
            journal_text.contains("scale_class small"),
            "journal should record the resolved class:\n{journal_text}"
        );
    }

    #[test]
    fn scale_class_flag_is_validated() {
        let design_path = tmp("scaleflag.pd");
        run(
            &strs(&["gen", "--cells", "60", "--nets", "60", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let out_path = tmp("scaleflag.pl");
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_path,
                "--scale-class",
                "gigantic",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("unknown scale class"));
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_path,
                "--flow",
                "reference",
                "--scale-class",
                "small",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--flow puffer"));
    }

    #[test]
    fn full_pipeline_gen_stats_place_eval_refine() {
        let design_path = tmp("pipe.pd");
        let placed_path = tmp("pipe.pl");
        let refined_path = tmp("pipe_ref.pl");
        let mut out = String::new();
        run(
            &strs(&[
                "gen",
                "--cells",
                "300",
                "--nets",
                "330",
                "--macros",
                "1",
                "--utilization",
                "0.6",
                "-o",
                &design_path,
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("300 cells"));

        let mut out = String::new();
        run(&strs(&["stats", &design_path]), &mut out).unwrap();
        assert!(out.contains("#Cells    : 300"));

        let mut out = String::new();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "120",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("HPWL"));

        let mut out = String::new();
        run(&strs(&["eval", &design_path, &placed_path]), &mut out).unwrap();
        assert!(out.contains("HOF"));

        let mut out = String::new();
        run(
            &strs(&["refine", &design_path, &placed_path, "-o", &refined_path]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("->"));
        assert!(std::path::Path::new(&refined_path).exists());
    }

    #[test]
    fn convert_imports_bookshelf() {
        let dir = std::env::temp_dir().join("puffer-cli-bookshelf");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.nodes"), "UCLA nodes 1.0\na 2 1\nb 2 1\n").unwrap();
        std::fs::write(
            dir.join("t.nets"),
            "UCLA nets 1.0\nNetDegree : 2 n0\n a I : 0 0\n b O : 0 0\n",
        )
        .unwrap();
        std::fs::write(dir.join("t.pl"), "UCLA pl 1.0\na 0 0 : N\nb 4 0 : N\n").unwrap();
        let scl: String = (0..10)
            .map(|i| {
                format!(
                    "CoreRow Horizontal\n Coordinate : {i}\n Height : 1\n Sitewidth : 1\n \
                     SubrowOrigin : 0 NumSites : 20\nEnd\n"
                )
            })
            .collect();
        std::fs::write(dir.join("t.scl"), scl).unwrap();
        std::fs::write(
            dir.join("t.aux"),
            "RowBasedPlacement : t.nodes t.nets t.pl t.scl\n",
        )
        .unwrap();
        let out_pd = dir.join("t.pd");
        let mut out = String::new();
        run(
            &strs(&[
                "convert",
                dir.join("t.aux").to_str().unwrap(),
                "-o",
                out_pd.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("2 cells"));
        // The converted design is loadable by every other subcommand.
        let mut stats_out = String::new();
        run(&strs(&["stats", out_pd.to_str().unwrap()]), &mut stats_out).unwrap();
        assert!(stats_out.contains("#Cells    : 2"));
    }

    #[test]
    fn eval_writes_maps() {
        let design_path = tmp("maps.pd");
        let placed_path = tmp("maps.pl");
        let maps_dir = tmp("maps_out");
        run(
            &strs(&["gen", "--cells", "200", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "60",
            ]),
            &mut String::new(),
        )
        .unwrap();
        let mut out = String::new();
        run(
            &strs(&["eval", &design_path, &placed_path, "--maps", &maps_dir]),
            &mut out,
        )
        .unwrap();
        assert!(Path::new(&maps_dir).join("congestion_h.csv").exists());
        assert!(Path::new(&maps_dir).join("congestion_v.pgm").exists());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = run(
            &strs(&["gen", "--cells", "100", "--wat", "3", "-o", &tmp("y.pd")]),
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.message.contains("unknown flag"));
        assert_eq!(err.code, 2);
    }

    #[test]
    fn bad_numeric_values_are_reported() {
        let err = run(
            &strs(&["gen", "--cells", "abc", "-o", &tmp("z.pd")]),
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.message.contains("cannot parse"));
    }

    #[test]
    fn place_journal_and_resume_roundtrip() {
        let design_path = tmp("ckpt.pd");
        let placed_path = tmp("ckpt.pl");
        let resumed_path = tmp("ckpt_resumed.pl");
        let journal_path = tmp("ckpt.pj");
        run(
            &strs(&["gen", "--cells", "200", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let mut out = String::new();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "80",
                "--journal",
                &journal_path,
                "--checkpoint-every",
                "20",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(Path::new(&journal_path).exists(), "journal not written");

        // Resuming from the final checkpoint reproduces the placement file.
        let mut out = String::new();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &resumed_path,
                "--max-iters",
                "80",
                "--resume",
                &journal_path,
            ]),
            &mut out,
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&placed_path).unwrap(),
            std::fs::read_to_string(&resumed_path).unwrap(),
            "resumed run diverged from the original"
        );
    }

    #[test]
    fn place_metrics_produces_a_checkable_trace() {
        let design_path = tmp("metrics.pd");
        let placed_path = tmp("metrics.pl");
        let metrics_path = tmp("metrics.jsonl");
        run(
            &strs(&["gen", "--cells", "200", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "80",
                "--threads",
                "2",
                "--metrics",
                &metrics_path,
                "--trace-summary",
            ]),
            &mut String::new(),
        )
        .unwrap();

        // The validator accepts the file and sees the full stage set.
        let mut out = String::new();
        run(&strs(&["trace", &metrics_path, "--check"]), &mut out).unwrap();
        assert!(out.contains("place.iter"), "{out}");
        assert!(out.contains("flow.done"), "{out}");
        assert!(out.contains("check OK"), "{out}");

        // eval shares the trace plumbing via evaluate_traced.
        let eval_metrics = tmp("metrics_eval.jsonl");
        run(
            &strs(&[
                "eval",
                &design_path,
                &placed_path,
                "--threads",
                "2",
                "--metrics",
                &eval_metrics,
            ]),
            &mut String::new(),
        )
        .unwrap();
        let mut out = String::new();
        run(&strs(&["trace", &eval_metrics]), &mut out).unwrap();
        assert!(out.contains("route.done"), "{out}");
    }

    #[test]
    fn trace_rejects_garbage_and_zero_threads_are_usage_errors() {
        let bad = tmp("bad.jsonl");
        std::fs::write(&bad, "not json at all\n").unwrap();
        let err = run(&strs(&["trace", &bad]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("invalid metrics file"), "{}", err.message);

        let err = run(
            &strs(&["place", "x.pd", "-o", "y.pl", "--threads", "0"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--threads"), "{}", err.message);
    }

    #[test]
    fn metrics_flags_require_puffer_flow() {
        let err = run(
            &strs(&[
                "place",
                "x.pd",
                "-o",
                "y.pl",
                "--flow",
                "replace",
                "--metrics",
                "m.jsonl",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--flow puffer"), "{}", err.message);
    }

    #[test]
    fn place_resume_from_garbage_fails_cleanly() {
        let design_path = tmp("ckpt_bad.pd");
        run(
            &strs(&["gen", "--cells", "100", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let bad = tmp("bad.pj");
        std::fs::write(&bad, "definitely not a checkpoint\n").unwrap();
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &tmp("ckpt_bad.pl"),
                "--resume",
                &bad,
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("cannot resume"), "{}", err.message);
    }

    #[test]
    fn journal_flags_require_puffer_flow() {
        let err = run(
            &strs(&[
                "place",
                "x.pd",
                "-o",
                "y.pl",
                "--flow",
                "reference",
                "--journal",
                "z.pj",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--flow puffer"), "{}", err.message);
    }

    #[test]
    fn place_rejects_unknown_flow() {
        let design_path = tmp("flow.pd");
        run(
            &strs(&["gen", "--cells", "100", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &tmp("flow.pl"),
                "--flow",
                "magic",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert!(err.message.contains("unknown flow"));
    }

    #[test]
    fn validate_flag_runs_the_flow_observers() {
        let design_path = tmp("val.pd");
        let placed_path = tmp("val.pl");
        let mut out = String::new();
        run(
            &strs(&["gen", "--cells", "220", "--nets", "240", "-o", &design_path]),
            &mut out,
        )
        .unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--validate",
                "--max-iters",
                "50",
            ]),
            &mut out,
        )
        .expect("a validated flow on a healthy design must pass");

        // --validate is an observer of the PUFFER flow only.
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--flow",
                "replace",
                "--validate",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--validate"), "{}", err.message);

        let mut out = String::new();
        run(
            &strs(&["eval", &design_path, &placed_path, "--validate"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("validate OK"), "{out}");
    }

    #[test]
    fn audit_command_checks_artifacts() {
        let design_path = tmp("audit.pd");
        let placed_path = tmp("audit.pl");
        let journal_path = tmp("audit.pj");
        let metrics_path = tmp("audit.jsonl");
        let mut out = String::new();
        run(
            &strs(&["gen", "--cells", "220", "--nets", "240", "-o", &design_path]),
            &mut out,
        )
        .unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "50",
                "--journal",
                &journal_path,
                "--metrics",
                &metrics_path,
            ]),
            &mut out,
        )
        .unwrap();

        let mut out = String::new();
        run(&strs(&["audit", "design", &design_path]), &mut out).unwrap();
        run(
            &strs(&["audit", "journal", &journal_path, &design_path]),
            &mut out,
        )
        .unwrap();
        run(&strs(&["audit", "metrics", &metrics_path]), &mut out).unwrap();
        run(
            &strs(&["audit", "run", &journal_path, &metrics_path]),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.matches("audit OK").count(), 4, "{out}");

        // Corrupt the metrics file; the audit must fail with exit code 1.
        std::fs::write(&metrics_path, "{\"t\":\"place.iter\",\"elapsed_s\":0.1,\"iter\":0}\n")
            .unwrap();
        let err = run(&strs(&["audit", "metrics", &metrics_path]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 1);

        let err = run(&strs(&["audit", "bogus"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn lint_rejects_a_non_workspace_root() {
        let dir = std::env::temp_dir().join("puffer-cli-tests").join("empty-root");
        std::fs::create_dir_all(&dir).unwrap();
        let err = run(
            &strs(&["lint", "--root", dir.to_str().unwrap()]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("lint failed"), "{}", err.message);
    }

    #[test]
    fn lint_json_emits_jsonl_findings_without_the_summary_line() {
        // A minimal one-crate workspace with a single no-panic violation.
        let root = std::env::temp_dir().join("puffer-cli-tests").join("lint-json");
        let _ = std::fs::remove_dir_all(&root);
        let src = root.join("crates").join("db").join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            root.join("crates").join("db").join("Cargo.toml"),
            "[package]\nname = \"puffer-db\"\n",
        )
        .unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\npub fn bad(v: Option<u8>) -> u8 { v.unwrap() }\n",
        )
        .unwrap();

        let mut out = String::new();
        let err = run(
            &strs(&["lint", "--root", root.to_str().unwrap(), "--json"]),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.code, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "{out}");
        assert!(lines[0].starts_with("{\"rule\":\"no-panic\""), "{out}");
        assert!(lines[0].contains("\"line\":2"), "{out}");
        assert!(!out.contains("lint:"), "summary line must be suppressed: {out}");
    }

    #[test]
    fn place_with_expired_deadline_reports_best_so_far() {
        let design_path = tmp("deadline.pd");
        let placed_path = tmp("deadline.pl");
        run(
            &strs(&["gen", "--cells", "250", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        // A microscopic deadline expires on the first budget check: the run
        // must still exit 0 with a legalized best-so-far placement.
        let mut out = String::new();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--deadline",
                "0.000001",
                "--degrade",
                "default",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("stopped early"), "{out}");
        assert!(std::path::Path::new(&placed_path).exists());
    }

    #[test]
    fn bounded_flags_are_validated() {
        let design_path = tmp("boundedflags.pd");
        let out_pl = tmp("boundedflags.pl");
        run(
            &strs(&["gen", "--cells", "200", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let err = run(
            &strs(&["place", &design_path, "-o", &out_pl, "--deadline", "-3"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_pl,
                "--deadline",
                "5",
                "--degrade",
                "bogus-step",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--degrade"), "{}", err.message);
        // The ladder is meaningless without a deadline to measure against.
        let err = run(
            &strs(&["place", &design_path, "-o", &out_pl, "--degrade", "default"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        // Bounded execution is a property of the PUFFER flow.
        let err = run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &out_pl,
                "--flow",
                "reference",
                "--deadline",
                "5",
            ]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn explore_reports_best_strategy() {
        let design_path = tmp("explore.pd");
        run(
            &strs(&["gen", "--cells", "150", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        let mut out = String::new();
        run(
            &strs(&[
                "explore",
                &design_path,
                "--trials",
                "3",
                "--max-iters",
                "30",
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("best overflow score"), "{out}");
        assert!(out.contains("3 trial(s)"), "{out}");
    }

    #[test]
    fn serve_flag_validation() {
        // Daemon mode needs a journal directory and exactly one transport.
        let err = run(&strs(&["serve"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--journal-dir"), "{}", err.message);
        let err = run(
            &strs(&["serve", "--journal-dir", "j", "--listen", "127.0.0.1:0", "--stdin"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("exactly one"), "{}", err.message);
        let err = run(
            &strs(&["serve", "--journal-dir", "j", "--stdin", "--seeds", "3"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--chaos"), "{}", err.message);
        // Chaos mode validates its own knobs and excludes the transports.
        let err = run(&strs(&["serve", "--chaos", "--seeds", "0"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&strs(&["serve", "--chaos", "--stdin"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(
            &strs(&["serve", "--stdin", "--journal-dir", "j", "--workers", "0"]),
            &mut String::new(),
        )
        .unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn serve_chaos_covers_every_fault_class() {
        let dir = std::env::temp_dir().join("puffer-cli-serve-chaos");
        let mut out = String::new();
        run(
            &strs(&[
                "serve",
                "--chaos",
                "--seeds",
                "6",
                "--cells",
                "120",
                "--max-iters",
                "30",
                "--journal-dir",
                dir.to_str().unwrap(),
            ]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("serve chaos OK"), "{out}");
        assert!(out.contains("1 worker-panic"), "{out}");
        assert!(out.contains("1 journal-write"), "{out}");
        assert!(out.contains("1 disconnect"), "{out}");
        assert!(out.contains("1 kill-restart"), "{out}");
        assert!(out.contains("1 disk-full"), "{out}");
        assert!(out.contains("1 rename-restart"), "{out}");
    }

    #[test]
    fn place_resume_tolerates_a_torn_journal_tail() {
        let design_path = tmp("torn.pd");
        let placed_path = tmp("torn.pl");
        let resumed_path = tmp("torn_resumed.pl");
        let journal_path = tmp("torn.pj");
        run(
            &strs(&["gen", "--cells", "200", "-o", &design_path]),
            &mut String::new(),
        )
        .unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &placed_path,
                "--max-iters",
                "80",
                "--journal",
                &journal_path,
                "--checkpoint-every",
                "20",
            ]),
            &mut String::new(),
        )
        .unwrap();
        // A crash mid-append: a complete record followed by half a record.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let mut torn = text.clone();
        torn.push_str(&text[..text.len() / 3]);
        std::fs::write(&journal_path, &torn).unwrap();
        run(
            &strs(&[
                "place",
                &design_path,
                "-o",
                &resumed_path,
                "--max-iters",
                "80",
                "--resume",
                &journal_path,
            ]),
            &mut String::new(),
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&placed_path).unwrap(),
            std::fs::read_to_string(&resumed_path).unwrap(),
            "resume over a torn tail diverged from the original"
        );
    }

    #[test]
    fn chaos_harness_covers_every_fault_class() {
        let mut out = String::new();
        run(
            &strs(&["chaos", "--seeds", "4", "--cells", "200", "--max-iters", "40"]),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("chaos OK"), "{out}");
        assert!(out.contains("4 fault class(es)"), "{out}");
        let err = run(&strs(&["chaos", "--seeds", "0"]), &mut String::new()).unwrap_err();
        assert_eq!(err.code, 2);
    }
}
