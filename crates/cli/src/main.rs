//! The `puffer` binary: thin wrapper over [`puffer_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    match puffer_cli::run(&args, &mut out) {
        Ok(()) => print!("{out}"),
        Err(e) => {
            print!("{out}");
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
