//! One torn-tail rule, four readers (satellite of the durable I/O work):
//! every journal consumer in the workspace — flow checkpoint recovery,
//! the metrics JSONL reader, exploration journal resume, and the serve
//! daemon's run-journal reader (`fsx`'s line reader) — must forgive the
//! same crash artifact: a final record a kill cut short mid-append.
//!
//! The fixture is shared: [`tear`] appends a prefix of the file's own
//! last record with no terminator, exactly the bytes `kill -9` leaves
//! behind between a `write(2)` and its completion.

use std::path::{Path, PathBuf};

use puffer::{CheckpointPolicy, FlowCheckpoint, PufferConfig, PufferPlacer};
use puffer_audit::Validate;
use puffer_budget::fsx;
use puffer_explore::journal::ExplorationJournal;
use puffer_explore::TrialOutcome;
use puffer_gen::{generate, GeneratorConfig};
use puffer_trace::{read_jsonl, Trace};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-torn-tail-test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared crash fixture: re-append the file's last complete record,
/// cut to `keep` bytes and unterminated — a torn final write.
fn tear(path: &Path, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let last = text
        .lines()
        .next_back()
        .expect("fixture file must have at least one record")
        .to_string();
    let keep = keep.clamp(1, last.len());
    let mut torn = text;
    torn.push_str(&last[..keep]);
    std::fs::write(path, torn).unwrap();
}

fn small_design(seed: u64) -> puffer_db::design::Design {
    generate(&GeneratorConfig {
        name: format!("torn{seed}"),
        num_cells: 200,
        num_nets: 220,
        utilization: 0.6,
        hotspot: 0.5,
        seed,
        ..GeneratorConfig::default()
    })
    .unwrap()
}

fn flow_config() -> PufferConfig {
    let mut cfg = PufferConfig::default();
    cfg.placer.max_iters = 40;
    cfg.placer.threads = 1;
    cfg.estimator.threads = 1;
    cfg
}

#[test]
fn checkpoint_recovery_drops_the_torn_tail_and_resumes() {
    let dir = tmp_dir("checkpoint");
    let design = small_design(51);
    let journal = dir.join("run.pj");
    PufferPlacer::new(flow_config())
        .place_with_checkpoints(
            &design,
            &CheckpointPolicy {
                path: journal.clone(),
                every: 5,
                keep_history: true,
            },
        )
        .unwrap();

    let clean = FlowCheckpoint::recover(&journal).unwrap();
    assert!(!clean.dropped_torn_tail);

    tear(&journal, 7);
    let recovered = FlowCheckpoint::recover(&journal).unwrap();
    assert!(recovered.dropped_torn_tail, "torn tail must be flagged");
    assert_eq!(recovered.records, clean.records, "complete records survive");
    recovered.checkpoint.validate().unwrap();

    // The recovered checkpoint is live: the flow resumes from it.
    PufferPlacer::new(flow_config())
        .resume(&design, &journal)
        .expect("resume over a torn journal tail must succeed");
}

#[test]
fn metrics_reader_drops_the_torn_tail_and_keeps_complete_records() {
    let dir = tmp_dir("metrics");
    let design = small_design(52);
    let metrics = dir.join("run.jsonl");
    let trace = Trace::with_sink(&metrics).unwrap();
    PufferPlacer::new(flow_config())
        .with_trace(trace.clone())
        .place(&design)
        .unwrap();
    trace.write_summary();
    trace.flush().unwrap();

    let clean = read_jsonl(&metrics).unwrap();
    assert!(!clean.is_empty());

    tear(&metrics, 9);
    let records = read_jsonl(&metrics).expect("torn tail must not fail the reader");
    assert_eq!(records.len(), clean.len(), "complete records survive");
}

#[test]
fn exploration_resume_drops_the_torn_trial() {
    let dir = tmp_dir("explore");
    let path = dir.join("trials.ej");
    let (mut journal, prior) = ExplorationJournal::open(&path, 2).unwrap();
    assert!(prior.is_empty());
    journal.record(&[0.5, 1.5], &TrialOutcome::Ok(0.25)).unwrap();
    journal.record(&[1.0, 2.0], &TrialOutcome::Ok(1.0)).unwrap();
    drop(journal);

    tear(&path, 10);
    let (_, replay) = ExplorationJournal::open(&path, 2).unwrap();
    assert_eq!(replay.len(), 2, "complete trials survive, the torn one is dropped");
}

#[test]
fn the_line_reader_behind_serve_recovery_flags_the_torn_tail() {
    // The serve daemon's crash recovery reads each job's run.jsonl through
    // fsx's line reader; this is that reader on the same fixture.
    let dir = tmp_dir("serve");
    let path = dir.join("run.jsonl");
    std::fs::write(
        &path,
        "{\"t\":\"serve.accepted\",\"id\":1}\n{\"t\":\"serve.result\",\"id\":1}\n",
    )
    .unwrap();

    let clean = fsx::read_journal_tail_tolerant(&path, fsx::RecordShape::Line).unwrap();
    assert_eq!(clean.len(), 2);
    assert!(!clean.dropped_torn_tail());

    tear(&path, 12);
    let journal = fsx::read_journal_tail_tolerant(&path, fsx::RecordShape::Line).unwrap();
    assert_eq!(journal.len(), 2, "complete records survive");
    assert!(journal.dropped_torn_tail(), "torn tail must be flagged");
    assert_eq!(journal.last(), Some("{\"t\":\"serve.result\",\"id\":1}"));
}
