//! End-to-end daemon test against the real `puffer` binary: submit more
//! jobs than the pool has workers, cancel one, kill the daemon mid-job
//! (SIGKILL — no chance to checkpoint on the way out), restart it over the
//! same journal directory, and verify that every surviving job finishes
//! with a placement byte-identical to an uninterrupted one-shot run while
//! the cancelled job stays cancelled.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const MAX_ITERS: usize = 120;
const JOBS: usize = 4; // > the 2-worker pool, so some jobs queue

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_puffer")
}

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-serve-daemon-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a one-shot `puffer` subcommand, asserting success.
fn puffer(args: &[&str]) {
    let status = Command::new(bin()).args(args).status().unwrap();
    assert!(status.success(), "puffer {args:?} failed");
}

/// Starts the daemon and returns the child plus the address it bound.
/// The returned reader holds the child's stdout pipe open — dropping it
/// early would make the daemon's exit summary print fail.
fn start_daemon(journal_dir: &Path) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--journal-dir",
            journal_dir.to_str().unwrap(),
            "--workers",
            "2",
            "--queue",
            "8",
            "--checkpoint-every",
            "5",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).unwrap();
    assert!(ready.contains("serve.ready"), "unexpected first line: {ready}");
    let addr = field(&ready, "addr").expect("serve.ready without addr");
    (child, addr, reader)
}

/// Extracts a string field's value from a one-line JSON record.
fn field(record: &str, name: &str) -> Option<String> {
    let key = format!("\"{name}\":\"");
    let start = record.find(&key)? + key.len();
    let end = record[start..].find('"')?;
    Some(record[start..start + end].to_string())
}

struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(300)))
                        .unwrap();
                    return Client { stream };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        let mut response = String::new();
        let mut byte = [0u8; 1];
        loop {
            match self.stream.read(&mut byte) {
                Ok(0) => panic!("daemon closed the connection; got: {response}"),
                Ok(_) if byte[0] == b'\n' => return response,
                Ok(_) => response.push(byte[0] as char),
                Err(e) => panic!("read failed: {e}; got: {response}"),
            }
        }
    }

    fn submit(&mut self, design: &Path, out: &Path) -> String {
        let line = format!(
            "{{\"t\":\"submit\",\"design\":\"{}\",\"out\":\"{}\",\"max_iters\":{MAX_ITERS},\"threads\":1}}",
            design.display(),
            out.display()
        );
        let response = self.request(&line);
        assert!(response.contains("serve.accepted"), "{response}");
        response
    }
}

#[test]
fn daemon_survives_kill_cancel_and_restart() {
    let dir = tmp_dir();
    let design = dir.join("design.pd");
    let reference = dir.join("reference.pl");
    let journal_dir = dir.join("journal");

    // One-shot reference: the trajectory every daemon job must reproduce.
    puffer(&[
        "gen", "--cells", "220", "--nets", "250", "--macros", "1",
        "--utilization", "0.6", "-o", design.to_str().unwrap(),
    ]);
    puffer(&[
        "place", design.to_str().unwrap(), "-o", reference.to_str().unwrap(),
        "--max-iters", "120", "--threads", "1",
    ]);
    let reference_bytes = std::fs::read(&reference).unwrap();

    // First daemon: submit more jobs than workers, cancel the last one
    // (still queued behind the 2-worker pool), kill the process mid-job.
    let (mut child, addr, _stdout) = start_daemon(&journal_dir);
    let outs: Vec<PathBuf> = (1..=JOBS).map(|i| dir.join(format!("job{i}.pl"))).collect();
    {
        let mut client = Client::connect(&addr);
        for out in &outs {
            client.submit(&design, out);
        }
        let response = client.request(&format!("{{\"t\":\"cancel\",\"id\":{JOBS}}}"));
        assert!(
            response.contains("\"state\":\"cancelled\""),
            "job {JOBS} should still be queued when cancelled: {response}"
        );
    }

    // Kill once job 1 has journaled a checkpoint (SIGKILL: the daemon gets
    // no chance to write a final checkpoint or clean anything up).
    let first_journal = journal_dir.join("job-1").join("run.pj");
    let deadline = Instant::now() + Duration::from_secs(120);
    while !first_journal.exists() {
        assert!(Instant::now() < deadline, "job 1 never wrote a checkpoint");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    // Second daemon over the same journal directory: the recovery scan must
    // re-enqueue the interrupted jobs and leave the cancelled one alone.
    let (mut child, addr, _stdout) = start_daemon(&journal_dir);
    {
        let mut client = Client::connect(&addr);
        for id in 1..JOBS {
            let response = client.request(&format!("{{\"t\":\"wait\",\"id\":{id},\"timeout_s\":240}}"));
            assert!(response.contains("serve.result"), "job {id}: {response}");
            assert!(response.contains("\"state\":\"done\""), "job {id}: {response}");
        }
        let response = client.request(&format!("{{\"t\":\"status\",\"id\":{JOBS}}}"));
        assert!(
            response.contains("\"state\":\"cancelled\""),
            "cancellation must survive the restart: {response}"
        );
        let response = client.request("{\"t\":\"drain\"}");
        assert!(response.contains("serve.done"), "{response}");
    }
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon exited with {status}");

    // Interrupted jobs resumed to placements byte-identical to the
    // uninterrupted reference; the cancelled job never wrote one.
    for out in outs.iter().take(JOBS - 1) {
        let bytes = std::fs::read(out)
            .unwrap_or_else(|e| panic!("missing output {}: {e}", out.display()));
        assert_eq!(
            bytes,
            reference_bytes,
            "{} diverged from the uninterrupted reference",
            out.display()
        );
    }
    assert!(
        !outs[JOBS - 1].exists(),
        "cancelled job must not write a placement"
    );
}
