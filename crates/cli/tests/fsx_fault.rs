//! Filesystem fault-injection tests over the real flow (satellite of the
//! durable I/O work): an injected ENOSPC mid-checkpoint-save must leave
//! the previously committed checkpoint untouched and resumable to a
//! bit-identical result, and an injected fsync failure on the metrics
//! sink must surface as a structured `TraceError` instead of silently
//! dropping telemetry.
//!
//! The fault hook (`puffer_budget::fsx::fault`) is process-global, so the
//! tests in this binary serialize on one mutex.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use puffer::{CheckpointPolicy, FlowCheckpoint, PufferConfig, PufferError, PufferPlacer};
use puffer_audit::Validate;
use puffer_budget::{fsx, FaultClass};
use puffer_db::design::Design;
use puffer_db::io::write_placement;
use puffer_gen::{generate, GeneratorConfig};
use puffer_trace::{read_jsonl, Trace, TraceError};

/// One armed fault at a time: the hook is process-global state.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-fsx-fault-test").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_design(seed: u64) -> Design {
    generate(&GeneratorConfig {
        name: format!("fsxfault{seed}"),
        num_cells: 220,
        num_nets: 240,
        utilization: 0.6,
        hotspot: 0.5,
        seed,
        ..GeneratorConfig::default()
    })
    .unwrap()
}

fn flow_config() -> PufferConfig {
    let mut cfg = PufferConfig::default();
    cfg.placer.max_iters = 60;
    cfg.placer.threads = 1;
    cfg.estimator.threads = 1;
    cfg
}

fn placement_bytes(result: &puffer::FlowResult) -> Vec<u8> {
    let mut buf = Vec::new();
    write_placement(&result.placement, &mut buf).unwrap();
    buf
}

#[test]
fn enospc_during_checkpoint_save_keeps_prior_checkpoint_resumable_and_bit_identical() {
    let _gate = gate();
    let dir = tmp_dir("enospc");
    let design = small_design(41);

    // Uninterrupted reference run: what a fault-free flow produces.
    let reference = placement_bytes(&PufferPlacer::new(flow_config()).place(&design).unwrap());

    // Fault run: the second checkpoint save hits ENOSPC. Each save is one
    // atomic_write — one guarded data write plus one guarded commit
    // rename, both of which DiskFull matches — so skipping 2 matching ops
    // lands the fault on save 2's data write, after save 1 committed.
    let journal = dir.join("run.pj");
    let policy = CheckpointPolicy {
        path: journal.clone(),
        every: 2,
        keep_history: false,
    };
    fsx::fault::arm(FaultClass::DiskFull, 2);
    let outcome = PufferPlacer::new(flow_config()).place_with_checkpoints(&design, &policy);
    let fired = !fsx::fault::armed();
    fsx::fault::disarm();
    assert!(fired, "armed ENOSPC fault never fired");
    let err = outcome.expect_err("ENOSPC mid-save must surface, not vanish");
    assert!(
        matches!(err, PufferError::Journal(_)),
        "wrong error class: {err}"
    );
    assert!(
        err.to_string().contains("disk full"),
        "error does not name the fault: {err}"
    );

    // The previously committed checkpoint is bit-identical to a clean
    // save: exactly one canonical record, no half-written bytes from the
    // failed replacement (its tmp sibling never reached the target).
    let on_disk = std::fs::read_to_string(&journal).unwrap();
    let checkpoint = FlowCheckpoint::load(&journal).expect("prior checkpoint must load");
    checkpoint.validate().expect("prior checkpoint must validate");
    assert_eq!(
        on_disk,
        checkpoint.render(),
        "failed save corrupted the committed journal bytes"
    );

    // And it is resumable to the same placement the uninterrupted run
    // produced, byte for byte.
    let resumed = PufferPlacer::new(flow_config())
        .resume(&design, &journal)
        .expect("resume from the prior checkpoint must succeed");
    assert_eq!(
        placement_bytes(&resumed),
        reference,
        "resumed placement differs from the uninterrupted reference"
    );
}

#[test]
fn fsync_failure_on_metrics_sink_surfaces_structured_trace_error() {
    let _gate = gate();
    let dir = tmp_dir("fsync");
    let design = small_design(42);

    let metrics = dir.join("metrics.jsonl");
    let trace = Trace::with_sink(&metrics).unwrap();
    // The sink's directory fsync already happened at creation; the next
    // guarded fsync is the flush barrier itself.
    fsx::fault::arm(FaultClass::FsyncFail, 0);
    let result = PufferPlacer::new(flow_config())
        .with_trace(trace.clone())
        .place(&design);
    let flushed = trace.flush();
    let fired = !fsx::fault::armed();
    fsx::fault::disarm();
    assert!(fired, "armed fsync fault never fired");

    // The flow result itself stands — durability of telemetry is not on
    // the flow's critical path.
    result.expect("flow must not fail because telemetry fsync failed");

    // The failure surfaces as a structured TraceError naming the sink.
    let err = flushed.expect_err("fsync failure must surface from flush");
    match &err {
        TraceError::Io { path, source } => {
            assert_eq!(path, &metrics, "error names the wrong sink: {err}");
            assert!(
                source.to_string().contains("fsync failed"),
                "error does not name the fault: {err}"
            );
        }
        other => panic!("wrong trace error shape: {other}"),
    }

    // Every record was written (one write per record) before the failed
    // durability barrier: nothing was silently dropped.
    let records = read_jsonl(&metrics).expect("metrics must stay readable");
    assert!(!records.is_empty(), "metrics lost despite per-record writes");
}
