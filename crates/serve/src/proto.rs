//! The `puffer serve` line protocol: newline-delimited JSON, version 2.
//!
//! Requests and responses are flat JSON objects, one per line, in the
//! [`puffer_trace`] record schema (a `"t"` kind field plus scalar fields).
//! Serve records bump the schema with an explicit `"v": 2` version field —
//! version 1 is the implicit version of the flow-telemetry records
//! (`place.iter`, `flow.done`, …), which carry no `"v"`. Parsing reuses
//! [`puffer_trace::parse_record`], so any client that speaks the trace
//! schema speaks this protocol.
//!
//! Requests (client → daemon):
//!
//! ```text
//! {"t":"submit","design":"chip.pd","max_iters":300,"deadline_s":60,"out":"chip.pl"}
//! {"t":"cancel","id":3}
//! {"t":"status"}            {"t":"status","id":3}
//! {"t":"wait","id":3,"timeout_s":120}
//! {"t":"ping"}
//! {"t":"drain"}             (graceful: finish queued+running, then exit)
//! {"t":"shutdown"}          (fast: checkpoint running jobs, keep queued for restart)
//! ```
//!
//! Responses (daemon → client) are the `serve.*` records rendered by this
//! module: `serve.ready`, `serve.accepted`, `serve.rejected`,
//! `serve.status`, `serve.jobs`, `serve.result`, `serve.error`,
//! `serve.pong`, `serve.done`.

use puffer_trace::{parse_record, ParsedRecord};

/// Protocol/schema version stamped into every serve record as `"v"`.
pub const PROTO_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// JSON line writer
// ---------------------------------------------------------------------------

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Builder for one flat JSON record line carrying `"t"` and `"v"`.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
}

impl JsonLine {
    /// Starts a record of the given kind: `{"t":"<kind>","v":2`.
    pub fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"t\":\"");
        escape_into(&mut buf, kind);
        let _ = std::fmt::Write::write_fmt(&mut buf, format_args!("\",\"v\":{PROTO_VERSION}"));
        JsonLine { buf }
    }

    fn key(&mut self, k: &str) {
        self.buf.push_str(",\"");
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v}"));
        self
    }

    /// Adds a float field (`{:?}` round-trips f64 exactly; non-finite
    /// values encode as `null`, matching the trace writer).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = std::fmt::Write::write_fmt(&mut self.buf, format_args!("{v:?}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a string field only when present.
    pub fn opt_str(self, k: &str, v: Option<&str>) -> Self {
        match v {
            Some(v) => self.str(k, v),
            None => self,
        }
    }

    /// Closes the record (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// What kind of work a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobKind {
    /// Run the full PUFFER placement flow.
    #[default]
    Place,
    /// Route-evaluate an existing placement (HOF/VOF/WL).
    Eval,
}

impl JobKind {
    fn as_str(self) -> &'static str {
        match self {
            JobKind::Place => "place",
            JobKind::Eval => "eval",
        }
    }
}

/// One job as submitted over the protocol and journaled as `spec.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobSpec {
    /// Place or eval.
    pub kind: JobKind,
    /// Path to a design file (`puffer_db::io` text format).
    pub design: Option<String>,
    /// Inline netlist: the same text format carried in the JSON line.
    pub design_text: Option<String>,
    /// Named generator preset (see `puffer_gen::presets::by_name`).
    pub preset: Option<String>,
    /// Scale factor for `preset` (defaults to 1.0).
    pub scale: Option<f64>,
    /// Placement file to evaluate (eval jobs).
    pub placement: Option<String>,
    /// Where to write the final placement (place jobs).
    pub out: Option<String>,
    /// Global-placement iteration cap.
    pub max_iters: Option<usize>,
    /// Worker threads for the flow's parallel kernels.
    pub threads: Option<usize>,
    /// Per-attempt wall-clock deadline in seconds.
    pub deadline_s: Option<f64>,
    /// Chaos injection tag (`panic-once`, `panic`, `journal-write@N`);
    /// honored by the engine's fault hooks, used by the chaos harness.
    pub chaos: Option<String>,
}

impl JobSpec {
    /// Checks the spec is runnable: exactly one design source, and eval
    /// jobs name a placement.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the problem.
    pub fn validate(&self) -> Result<(), String> {
        let sources = [
            self.design.is_some(),
            self.design_text.is_some(),
            self.preset.is_some(),
        ]
        .iter()
        .filter(|b| **b)
        .count();
        if sources != 1 {
            return Err(format!(
                "need exactly one design source (design | design_text | preset), got {sources}"
            ));
        }
        if self.kind == JobKind::Eval && self.placement.is_none() {
            return Err("eval jobs need a 'placement' path".into());
        }
        if let Some(s) = self.scale {
            if !(s.is_finite() && s > 0.0) {
                return Err(format!("scale must be a positive number, got {s}"));
            }
        }
        if let Some(d) = self.deadline_s {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("deadline_s must be a positive number, got {d}"));
            }
        }
        Ok(())
    }

    /// Reads a spec out of a parsed record (a `submit` request or a
    /// journaled `job.spec` line).
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_record(rec: &ParsedRecord) -> Result<Self, String> {
        let kind = match rec.str_field("kind") {
            None | Some("place") => JobKind::Place,
            Some("eval") => JobKind::Eval,
            Some(other) => return Err(format!("unknown job kind '{other}'")),
        };
        let usize_field = |key: &str| -> Result<Option<usize>, String> {
            match rec.num(key) {
                None => Ok(None),
                Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(Some(v as usize)),
                Some(v) => Err(format!("field '{key}' must be a non-negative integer, got {v}")),
            }
        };
        Ok(JobSpec {
            kind,
            design: rec.str_field("design").map(str::to_string),
            design_text: rec.str_field("design_text").map(str::to_string),
            preset: rec.str_field("preset").map(str::to_string),
            scale: rec.num("scale"),
            placement: rec.str_field("placement").map(str::to_string),
            out: rec.str_field("out").map(str::to_string),
            max_iters: usize_field("max_iters")?,
            threads: usize_field("threads")?,
            deadline_s: rec.num("deadline_s"),
            chaos: rec.str_field("chaos").map(str::to_string),
        })
    }

    /// Serializes the spec as one `job.spec` record line (the `spec.json`
    /// journal format).
    pub fn render(&self) -> String {
        let mut line = JsonLine::new("job.spec").str("kind", self.kind.as_str());
        line = line
            .opt_str("design", self.design.as_deref())
            .opt_str("design_text", self.design_text.as_deref())
            .opt_str("preset", self.preset.as_deref());
        if let Some(s) = self.scale {
            line = line.num("scale", s);
        }
        line = line
            .opt_str("placement", self.placement.as_deref())
            .opt_str("out", self.out.as_deref());
        if let Some(m) = self.max_iters {
            line = line.int("max_iters", m as i64);
        }
        if let Some(t) = self.threads {
            line = line.int("threads", t as i64);
        }
        if let Some(d) = self.deadline_s {
            line = line.num("deadline_s", d);
        }
        line.opt_str("chaos", self.chaos.as_deref()).finish()
    }

    /// Parses a `job.spec` line written by [`JobSpec::render`].
    ///
    /// # Errors
    ///
    /// A message for unparseable JSON or malformed fields.
    pub fn parse(line: &str) -> Result<Self, String> {
        Self::from_record(&parse_record(line)?)
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(Box<JobSpec>),
    /// Cancel a job by id.
    Cancel {
        /// Job id from `serve.accepted`.
        id: u64,
    },
    /// Report one job (`id`) or all jobs.
    Status {
        /// Job id, or `None` for all jobs.
        id: Option<u64>,
    },
    /// Block until a job reaches a terminal state (or the timeout).
    Wait {
        /// Job id from `serve.accepted`.
        id: u64,
        /// Give up after this many seconds (`None` blocks).
        timeout_s: Option<f64>,
    },
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: stop admitting, run everything queued, exit.
    Drain,
    /// Fast shutdown: checkpoint running jobs, keep queued jobs journaled
    /// for the next start, exit.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A message for unparseable JSON, an unknown request kind, or a missing
/// required field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let rec = parse_record(line)?;
    let id_field = |key: &str| -> Result<u64, String> {
        match rec.num(key) {
            Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
            Some(v) => Err(format!("'{key}' must be a non-negative integer, got {v}")),
            None => Err(format!("request needs an '{key}' field")),
        }
    };
    match rec.kind() {
        Some("submit") => Ok(Request::Submit(Box::new(JobSpec::from_record(&rec)?))),
        Some("cancel") => Ok(Request::Cancel { id: id_field("id")? }),
        Some("status") => Ok(Request::Status {
            id: match rec.num("id") {
                None => None,
                Some(_) => Some(id_field("id")?),
            },
        }),
        Some("wait") => Ok(Request::Wait {
            id: id_field("id")?,
            timeout_s: rec.num("timeout_s"),
        }),
        Some("ping") => Ok(Request::Ping),
        Some("drain") => Ok(Request::Drain),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => Err(format!("unknown request '{other}'")),
        None => Err("request needs a string 't' field".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_parseable_and_versioned() {
        let line = JsonLine::new("serve.test")
            .str("msg", "a \"quoted\"\nline\t\\")
            .int("n", -3)
            .num("x", 0.1 + 0.2)
            .num("bad", f64::NAN)
            .finish();
        let rec = parse_record(&line).unwrap();
        assert_eq!(rec.kind(), Some("serve.test"));
        assert_eq!(rec.num("v"), Some(2.0));
        assert_eq!(rec.str_field("msg"), Some("a \"quoted\"\nline\t\\"));
        assert_eq!(rec.num("n"), Some(-3.0));
        assert_eq!(rec.num("x"), Some(0.1 + 0.2));
        assert!(rec.get("bad").unwrap().is_null());
    }

    #[test]
    fn job_spec_round_trips_including_inline_netlists() {
        let spec = JobSpec {
            kind: JobKind::Place,
            design_text: Some("puffer_design 1\nname tiny\n".to_string()),
            out: Some("/tmp/out.pl".to_string()),
            max_iters: Some(120),
            threads: Some(2),
            deadline_s: Some(4.5),
            chaos: Some("journal-write@6".to_string()),
            ..JobSpec::default()
        };
        spec.validate().unwrap();
        let parsed = JobSpec::parse(&spec.render()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn spec_validation_catches_broken_specs() {
        assert!(JobSpec::default().validate().is_err(), "no design source");
        let two = JobSpec {
            design: Some("a.pd".into()),
            preset: Some("or1200".into()),
            ..JobSpec::default()
        };
        assert!(two.validate().is_err(), "two design sources");
        let eval = JobSpec {
            kind: JobKind::Eval,
            design: Some("a.pd".into()),
            ..JobSpec::default()
        };
        assert!(eval.validate().is_err(), "eval without placement");
        let bad_deadline = JobSpec {
            design: Some("a.pd".into()),
            deadline_s: Some(-1.0),
            ..JobSpec::default()
        };
        assert!(bad_deadline.validate().is_err());
    }

    #[test]
    fn requests_parse() {
        let r = parse_request(r#"{"t":"submit","design":"d.pd","max_iters":50}"#).unwrap();
        match r {
            Request::Submit(spec) => {
                assert_eq!(spec.design.as_deref(), Some("d.pd"));
                assert_eq!(spec.max_iters, Some(50));
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert_eq!(
            parse_request(r#"{"t":"cancel","id":4}"#).unwrap(),
            Request::Cancel { id: 4 }
        );
        assert_eq!(
            parse_request(r#"{"t":"status"}"#).unwrap(),
            Request::Status { id: None }
        );
        assert_eq!(
            parse_request(r#"{"t":"wait","id":1,"timeout_s":2.5}"#).unwrap(),
            Request::Wait {
                id: 1,
                timeout_s: Some(2.5)
            }
        );
        assert_eq!(parse_request(r#"{"t":"drain"}"#).unwrap(), Request::Drain);
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"t":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"t":"cancel"}"#).is_err(), "missing id");
        assert!(parse_request(r#"{"t":"cancel","id":1.5}"#).is_err());
    }
}
