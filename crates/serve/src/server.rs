//! Protocol transports: serving the line protocol over TCP or any
//! `BufRead`/`Write` pair (stdin mode, tests).
//!
//! Both transports parse one request per line ([`crate::proto`]), apply it
//! to the [`EngineHandle`], and write the response line(s) back. The TCP
//! accept loop is single-threaded by design: requests are cheap bookkeeping
//! (submit/cancel/status) — the heavy lifting happens on the engine's
//! worker pool — and one connection at a time keeps the robustness surface
//! auditable. Client disconnects (including mid-line) are tolerated and
//! never take the daemon down.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use puffer_budget::CancelToken;

use crate::engine::EngineHandle;
use crate::proto::{parse_request, JsonLine, Request};

/// What a handled request asks the serving loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Stop admitting, finish every job, then exit.
    Drain,
    /// Stop fast: checkpoint running jobs for the next start, then exit.
    Shutdown,
}

/// Handles one request line, appending response line(s) to `out`.
/// Malformed lines produce a `serve.rejected` response, never an error —
/// a confused client must not wedge the daemon.
pub fn handle_line(handle: &EngineHandle<'_>, line: &str, out: &mut String) -> Action {
    let line = line.trim();
    if line.is_empty() {
        return Action::Continue;
    }
    let push = |out: &mut String, record: String| {
        out.push_str(&record);
        out.push('\n');
    };
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            push(
                out,
                JsonLine::new("serve.rejected")
                    .str("reason", "bad-request")
                    .str("detail", &e)
                    .finish(),
            );
            return Action::Continue;
        }
    };
    match request {
        Request::Submit(spec) => {
            match handle.submit(*spec) {
                Ok((id, queued)) => push(
                    out,
                    JsonLine::new("serve.accepted")
                        .int("id", id as i64)
                        .int("queued", queued as i64)
                        .int("capacity", handle.capacity() as i64)
                        .finish(),
                ),
                Err(r) => push(
                    out,
                    JsonLine::new("serve.rejected")
                        .str("reason", r.reason)
                        .str("detail", &r.detail)
                        .int("queued", r.queued as i64)
                        .int("capacity", r.capacity as i64)
                        .finish(),
                ),
            }
            Action::Continue
        }
        Request::Cancel { id } => {
            match handle.cancel(id) {
                Ok(state) => push(
                    out,
                    JsonLine::new("serve.status")
                        .int("id", id as i64)
                        .str("state", state.as_str())
                        .finish(),
                ),
                Err(e) => push(
                    out,
                    JsonLine::new("serve.rejected")
                        .str("reason", "unknown-job")
                        .str("detail", &e)
                        .finish(),
                ),
            }
            Action::Continue
        }
        Request::Status { id: Some(id) } => {
            match handle.status(id) {
                Some(s) => push(
                    out,
                    JsonLine::new("serve.status")
                        .int("id", id as i64)
                        .str("state", s.state.as_str())
                        .int("attempts", s.attempts as i64)
                        .str("message", &s.message)
                        .finish(),
                ),
                None => push(
                    out,
                    JsonLine::new("serve.rejected")
                        .str("reason", "unknown-job")
                        .str("detail", &format!("no job {id}"))
                        .finish(),
                ),
            }
            Action::Continue
        }
        Request::Status { id: None } => {
            let all = handle.statuses();
            push(
                out,
                JsonLine::new("serve.jobs")
                    .int("count", all.len() as i64)
                    .int("queued", handle.queue_len() as i64)
                    .int("workers", handle.live_workers() as i64)
                    .finish(),
            );
            for s in all {
                push(
                    out,
                    JsonLine::new("serve.status")
                        .int("id", s.id as i64)
                        .str("state", s.state.as_str())
                        .int("attempts", s.attempts as i64)
                        .str("message", &s.message)
                        .finish(),
                );
            }
            Action::Continue
        }
        Request::Wait { id, timeout_s } => {
            let timeout = timeout_s.map(Duration::from_secs_f64);
            match handle.wait(id, timeout) {
                Ok(record) => push(out, record),
                Err(e) => push(
                    out,
                    JsonLine::new("serve.rejected")
                        .str("reason", "wait-failed")
                        .str("detail", &format!("{e:?}"))
                        .finish(),
                ),
            }
            Action::Continue
        }
        Request::Ping => {
            push(out, JsonLine::new("serve.pong").finish());
            Action::Continue
        }
        Request::Drain => {
            push(out, JsonLine::new("serve.done").str("mode", "drain").finish());
            Action::Drain
        }
        Request::Shutdown => {
            push(
                out,
                JsonLine::new("serve.done").str("mode", "shutdown").finish(),
            );
            Action::Shutdown
        }
    }
}

/// Applies a terminal action: drain waits for every job, shutdown
/// checkpoints running jobs for the next start.
fn wind_down(handle: &EngineHandle<'_>, action: Action) {
    match action {
        Action::Drain => handle.drain(),
        Action::Shutdown => handle.shutdown(),
        Action::Continue => {}
    }
}

/// Serves the protocol over a `BufRead`/`Write` pair until EOF or a
/// drain/shutdown request (stdin mode; also the unit-test transport).
/// EOF drains: everything submitted runs to completion before returning.
///
/// # Errors
///
/// I/O errors writing responses.
pub fn serve_lines(
    handle: &EngineHandle<'_>,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<Action> {
    let mut out = String::new();
    for line in reader.lines() {
        let line = line?;
        out.clear();
        let action = handle_line(handle, &line, &mut out);
        writer.write_all(out.as_bytes())?;
        writer.flush()?;
        if action != Action::Continue {
            wind_down(handle, action);
            return Ok(action);
        }
    }
    wind_down(handle, Action::Drain);
    Ok(Action::Drain)
}

/// The outcome of a TCP serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOutcome {
    /// A client asked for drain; every job completed.
    Drained,
    /// A client asked for fast shutdown; interrupted jobs are resumable.
    Shutdown,
    /// The signal token tripped (SIGTERM/SIGINT): graceful drain.
    Signalled,
}

/// Serves the protocol on a TCP listener until a client sends
/// drain/shutdown or `signal` trips (SIGTERM → drain). One connection at
/// a time; client disconnects are tolerated.
///
/// # Errors
///
/// Fatal listener errors only (accept failures other than `WouldBlock`).
pub fn serve_listener(
    handle: &EngineHandle<'_>,
    listener: &TcpListener,
    signal: &CancelToken,
) -> std::io::Result<ServerOutcome> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                match serve_connection(handle, stream) {
                    Action::Continue => {}
                    a @ (Action::Drain | Action::Shutdown) => {
                        wind_down(handle, a);
                        return Ok(match a {
                            Action::Shutdown => ServerOutcome::Shutdown,
                            _ => ServerOutcome::Drained,
                        });
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if signal.is_cancelled() {
                    wind_down(handle, Action::Drain);
                    return Ok(ServerOutcome::Signalled);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one TCP connection until it closes or sends drain/shutdown.
/// Every I/O failure on the connection — including a client vanishing
/// mid-line — ends this connection only.
fn serve_connection(handle: &EngineHandle<'_>, stream: TcpStream) -> Action {
    // A finite read timeout lets blocking `wait` requests coexist with
    // clients that keep the connection open silently.
    if stream.set_read_timeout(Some(Duration::from_millis(200))).is_err() {
        return Action::Continue;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return Action::Continue,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut out = String::new();
    loop {
        line.clear();
        // read_line may return WouldBlock/TimedOut with a partial line
        // already buffered in `line`… except BufRead::read_line gives no
        // way to keep the partial read across calls, so accumulate
        // manually byte-runs via fill_buf.
        match read_line_tolerant(&mut reader, &mut line) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::ConnectionLost => return Action::Continue,
        }
        out.clear();
        let action = handle_line(handle, &line, &mut out);
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return Action::Continue; // client went away; responses are best-effort
        }
        if action != Action::Continue {
            return action;
        }
    }
}

enum LineRead {
    Line,
    Eof,
    ConnectionLost,
}

/// How long a connection may sit idle (or hold a line half-sent) before
/// the daemon drops it and goes back to accepting: one stalled client must
/// not wedge the single-connection serving loop.
const IDLE_LIMIT: Duration = Duration::from_secs(10);

/// Reads one `\n`-terminated line, preserving partial data across read
/// timeouts (a slow client trickling bytes is fine) and treating any hard
/// error — or [`IDLE_LIMIT`] of silence — as a lost connection.
fn read_line_tolerant(reader: &mut BufReader<TcpStream>, line: &mut String) -> LineRead {
    let idle_since = puffer_budget::clock::Stopwatch::start();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if idle_since.elapsed() > IDLE_LIMIT {
                    return LineRead::ConnectionLost;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::ConnectionLost,
        };
        if buf.is_empty() {
            return LineRead::Eof;
        }
        let (used, done) = match buf.iter().position(|b| *b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (buf.len(), false),
        };
        line.push_str(&String::from_utf8_lossy(&buf[..used]));
        reader.consume(used);
        if done {
            return LineRead::Line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, ServeConfig};
    use std::io::Cursor;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("puffer-serve-server").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg(name: &str) -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 4,
            journal_dir: tmp_dir(name).join("journal"),
            checkpoint_every: 10,
            max_attempts: 2,
            backoff: std::time::Duration::from_millis(5),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn line_transport_submits_waits_and_drains() {
        let input = concat!(
            "{\"t\":\"ping\"}\n",
            "{\"t\":\"submit\",\"preset\":\"or1200\",\"scale\":0.02,\"max_iters\":40,\"threads\":1}\n",
            "{\"t\":\"wait\",\"id\":1,\"timeout_s\":120}\n",
            "{\"t\":\"status\"}\n",
            "{\"t\":\"drain\"}\n",
        );
        let mut output = Vec::new();
        let action = Engine::run(cfg("lines"), |h| {
            serve_lines(h, Cursor::new(input), &mut output)
        })
        .unwrap()
        .unwrap();
        assert_eq!(action, Action::Drain);
        let text = String::from_utf8(output).unwrap();
        let kinds: Vec<String> = text
            .lines()
            .map(|l| {
                puffer_trace::parse_record(l)
                    .unwrap()
                    .kind()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "serve.pong",
                "serve.accepted",
                "serve.result",
                "serve.jobs",
                "serve.status",
                "serve.done"
            ],
            "{text}"
        );
    }

    #[test]
    fn malformed_and_unknown_requests_reject_without_wedging() {
        let input = concat!(
            "this is not json\n",
            "{\"t\":\"frobnicate\"}\n",
            "{\"t\":\"cancel\",\"id\":99}\n",
            "{\"t\":\"submit\"}\n",
            "{\"t\":\"ping\"}\n",
        );
        let mut output = Vec::new();
        Engine::run(cfg("malformed"), |h| {
            serve_lines(h, Cursor::new(input), &mut output).unwrap();
        })
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        let kinds: Vec<&str> = text
            .lines()
            .map(|l| {
                if l.contains("serve.rejected") {
                    "rejected"
                } else if l.contains("serve.pong") {
                    "pong"
                } else {
                    "other"
                }
            })
            .collect();
        assert_eq!(kinds, vec!["rejected", "rejected", "rejected", "rejected", "pong"]);
    }

    #[test]
    fn eof_without_drain_still_runs_submitted_jobs() {
        let input = concat!(
            "{\"t\":\"submit\",\"preset\":\"or1200\",\"scale\":0.02,\"max_iters\":40,",
            "\"threads\":1}\n",
        );
        let mut output = Vec::new();
        Engine::run(cfg("eof"), |h| {
            serve_lines(h, Cursor::new(input), &mut output).unwrap();
            // EOF implies drain: by the time serve_lines returns, the job
            // must be terminal.
            let s = h.status(1).unwrap();
            assert!(s.state.terminal(), "EOF must drain, job was {:?}", s.state);
        })
        .unwrap();
    }
}
