//! `puffer-serve`: a crash-tolerant job engine and line-protocol daemon
//! for PUFFER placement and evaluation jobs.
//!
//! The crate stacks four layers:
//!
//! * [`queue`] — a bounded MPMC admission queue with explicit
//!   backpressure: a full queue rejects with a reason, never buffers
//!   unboundedly;
//! * [`proto`] — the versioned (`"v": 2`) newline-delimited JSON protocol:
//!   job specs, requests, and the `serve.*` response records, all in the
//!   [`puffer_trace`] record schema;
//! * [`engine`] — the worker pool: panic isolation per job, retry with
//!   exponential backoff for transient faults, per-job deadlines and
//!   client cancellation through [`puffer_budget::CancelToken`], journal
//!   directories (`job-<id>/spec.json`, `run.pj`, `result.json`), and a
//!   recovery scan that re-enqueues interrupted jobs on restart;
//! * [`server`] — the transports: TCP (`puffer serve --listen`) and any
//!   `BufRead`/`Write` pair (`puffer serve --stdin`).
//!
//! [`chaos`] is the in-process fault-injection harness behind
//! `puffer serve --chaos`: seeded worker panics, journal-write faults,
//! client disconnects, and kill/restart cycles, each verified against the
//! three-legal-end-states contract (completed result / resumable
//! checkpoint replaying bit-identically / structured error).
//!
//! Every job ultimately runs through [`puffer::Job`], the same `Send`-able
//! flow object the one-shot CLI uses — the daemon adds supervision, not a
//! second flow implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod proto;
pub mod queue;
pub mod server;

pub use chaos::{run_chaos, ChaosConfig, ChaosSummary};
pub use engine::{Engine, EngineHandle, JobState, Reject, ServeConfig, StatusView, WaitError};
pub use proto::{parse_request, JobKind, JobSpec, JsonLine, Request, PROTO_VERSION};
pub use queue::{BoundedQueue, Popped, PushError};
pub use server::{handle_line, serve_lines, serve_listener, Action, ServerOutcome};
