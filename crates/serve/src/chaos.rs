//! Seeded chaos harness for the serve engine (`puffer serve --chaos`).
//!
//! Each round injects one fault class, seeded and fully deterministic:
//!
//! * `worker-panic` — a job panics its worker (once: retry must succeed
//!   bit-identically; always: the job must fail with a structured error);
//! * `journal-write` — a checkpoint write dies mid-write at a seeded
//!   iteration; the retry must resume from the last good checkpoint;
//! * `client-disconnect` — a TCP client drops its connection mid-line;
//!   the daemon must keep serving and the next client's job must finish;
//! * `kill-restart` — the engine shuts down mid-job (the in-process
//!   equivalent of `kill -9` right after a checkpoint fsync), the journal
//!   tail is torn at a seeded byte, and a fresh engine over the same
//!   directory must resume and finish bit-identically;
//! * `disk-full` — the durable I/O layer injects ENOSPC on a seeded
//!   guarded write of the first attempt (a checkpoint save or a journal
//!   record); the job must still end `Done` with a bit-identical
//!   placement, via transient-retry or a surfaced flush warning;
//! * `rename-restart` — a checkpoint's commit rename fails (injected via
//!   `fsx`), the engine is killed before the retry settles, and a restart
//!   over the same directory must resume from the last good checkpoint
//!   and finish bit-identically.
//!
//! After every round the harness asserts the robustness invariants: every
//! job sits in exactly one legal end state (completed result / resumable
//! checkpoint / structured error), completed placements are bit-identical
//! to an uninterrupted reference run, and the worker pool is intact (a
//! panic may never cost a worker).

use std::fs;
use std::io::Write as IoWrite;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use puffer::{Job, PufferConfig};
use puffer_budget::fsx;
use puffer_budget::CancelToken;
use puffer_db::io::{write_design, write_placement};
use puffer_gen::{generate, GeneratorConfig};
use puffer_rng::StdRng;
use puffer_trace::Trace;

use crate::engine::{Engine, EngineHandle, JobState, ServeConfig};
use crate::proto::JobSpec;
use crate::server::serve_listener;

/// Chaos-run settings.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault-injection rounds (each uses its index as the seed).
    pub seeds: u64,
    /// Cells in the generated chaos design.
    pub cells: usize,
    /// GP iteration cap for chaos jobs.
    pub max_iters: usize,
    /// Worker-pool size under test.
    pub workers: usize,
    /// Scratch directory (wiped per round).
    pub dir: PathBuf,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seeds: 8,
            cells: 200,
            max_iters: 120,
            workers: 2,
            dir: std::env::temp_dir().join("puffer-serve-chaos"),
        }
    }
}

/// What a chaos run observed.
#[derive(Debug, Clone, Default)]
pub struct ChaosSummary {
    /// Rounds completed.
    pub rounds: u64,
    /// Injections per class: panic, journal-write, disconnect,
    /// kill-restart, disk-full, rename-restart.
    pub injections: [u64; 6],
    /// Jobs that ended as completed results.
    pub completed: u64,
    /// Jobs that ended as structured errors.
    pub failed: u64,
}

const FAULT_NAMES: [&str; 6] = [
    "worker-panic",
    "journal-write",
    "client-disconnect",
    "kill-restart",
    "disk-full",
    "rename-restart",
];

/// Generous bound for any single chaos wait; hitting it means a job got
/// stuck, which the harness reports as a deadlock.
const WAIT: Duration = Duration::from_secs(180);

/// Runs the chaos harness; `log` receives one line per round.
///
/// # Errors
///
/// The first violated invariant, as a human-readable message naming the
/// seed and fault class.
pub fn run_chaos(cfg: &ChaosConfig, mut log: impl FnMut(&str)) -> Result<ChaosSummary, String> {
    let mut summary = ChaosSummary::default();
    for seed in 0..cfg.seeds {
        let class = (seed % 6) as usize;
        let round = RoundContext::prepare(cfg, seed)?;
        let outcome = match class {
            0 => round.worker_panic(),
            1 => round.journal_write(),
            2 => round.client_disconnect(),
            3 => round.kill_restart(),
            4 => round.disk_full(),
            _ => round.rename_restart(),
        };
        let (completed, failed) =
            outcome.map_err(|e| format!("seed {seed} [{}]: {e}", FAULT_NAMES[class]))?;
        summary.rounds += 1;
        summary.injections[class] += 1;
        summary.completed += completed;
        summary.failed += failed;
        log(&format!(
            "seed {seed:>3} [{:<17}] OK: {completed} completed, {failed} structured errors",
            FAULT_NAMES[class]
        ));
    }
    Ok(summary)
}

/// One round's scratch state: a seeded design on disk plus the reference
/// placement bytes an uninterrupted run of the same job produces.
struct RoundContext {
    seed: u64,
    dir: PathBuf,
    design_path: PathBuf,
    reference: Vec<u8>,
    workers: usize,
    max_iters: usize,
}

impl RoundContext {
    fn prepare(cfg: &ChaosConfig, seed: u64) -> Result<Self, String> {
        let dir = cfg.dir.join(format!("round-{seed}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let design = generate(&GeneratorConfig {
            num_cells: cfg.cells,
            num_nets: cfg.cells + cfg.cells / 8,
            num_macros: 1,
            utilization: 0.6,
            hotspot: 0.4,
            seed,
            ..GeneratorConfig::default()
        })
        .map_err(|e| format!("generate: {e}"))?;
        let design_path = dir.join("design.pd");
        let mut buf = Vec::new();
        write_design(&design, &mut buf).map_err(|e| format!("render design: {e}"))?;
        fsx::atomic_write(&design_path, &buf).map_err(|e| format!("write design: {e}"))?;

        let reference_run = Job::new(flow_config(cfg.max_iters))
            .run(&design)
            .map_err(|e| format!("reference run: {e}"))?;
        let mut reference = Vec::new();
        write_placement(&reference_run.placement, &mut reference)
            .map_err(|e| format!("render reference: {e}"))?;
        Ok(RoundContext {
            seed,
            dir,
            design_path,
            reference,
            workers: cfg.workers,
            max_iters: cfg.max_iters,
        })
    }

    fn serve_config(&self, tag: &str) -> ServeConfig {
        ServeConfig {
            workers: self.workers,
            queue_capacity: 8,
            journal_dir: self.dir.join(tag),
            checkpoint_every: 3,
            max_attempts: 3,
            backoff: Duration::from_millis(5),
            trace: Trace::disabled(),
        }
    }

    fn spec(&self, out: Option<&Path>, chaos: Option<String>) -> JobSpec {
        JobSpec {
            design: Some(self.design_path.to_string_lossy().into_owned()),
            out: out.map(|p| p.to_string_lossy().into_owned()),
            max_iters: Some(self.max_iters),
            threads: Some(1),
            chaos,
            ..JobSpec::default()
        }
    }

    fn check_reference(&self, out: &Path, what: &str) -> Result<(), String> {
        let bytes = fs::read(out).map_err(|e| format!("{what}: read {}: {e}", out.display()))?;
        if bytes != self.reference {
            return Err(format!("{what}: placement differs from uninterrupted reference"));
        }
        Ok(())
    }

    /// A panicked worker must survive (pool invariant), the once-panicking
    /// job must retry to a bit-identical result, and the always-panicking
    /// job must end as a structured error.
    fn worker_panic(self) -> Result<(u64, u64), String> {
        let out = self.dir.join("panic-once.pl");
        Engine::run(self.serve_config("journal"), |h| -> Result<(), String> {
            let (once, _) = h
                .submit(self.spec(Some(&out), Some("panic-once".into())))
                .map_err(|r| format!("submit: {}", r.detail))?;
            let (always, _) = h
                .submit(self.spec(None, Some("panic".into())))
                .map_err(|r| format!("submit: {}", r.detail))?;
            let record = wait_terminal(h, once)?;
            expect_state(h, once, JobState::Done, &record)?;
            let record = wait_terminal(h, always)?;
            expect_state(h, always, JobState::Failed, &record)?;
            if !record.contains("\"class\":\"panic\"") {
                return Err(format!("structured error lacks panic class: {record}"));
            }
            verify_pool(h)?;
            h.drain();
            Ok(())
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "retry-after-panic")?;
        Ok((1, 1))
    }

    /// A checkpoint write dies mid-write at a seeded iteration; the retry
    /// resumes from the last good checkpoint and must land bit-identical.
    fn journal_write(self) -> Result<(u64, u64), String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let at = rng.gen_range(2..self.max_iters.max(8) / 2);
        let out = self.dir.join("journal-write.pl");
        Engine::run(self.serve_config("journal"), |h| -> Result<(), String> {
            let (id, _) = h
                .submit(self.spec(Some(&out), Some(format!("journal-write@{at}"))))
                .map_err(|r| format!("submit: {}", r.detail))?;
            let record = wait_terminal(h, id)?;
            expect_state(h, id, JobState::Done, &record)?;
            let attempts = h.status(id).map(|s| s.attempts).unwrap_or_default();
            if attempts < 2 {
                return Err(format!("journal fault at iter {at} never fired (attempts {attempts})"));
            }
            verify_pool(h)?;
            h.drain();
            Ok(())
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "resume-after-journal-fault")?;
        Ok((1, 0))
    }

    /// A client connects, trickles half a request line, and vanishes; the
    /// daemon must keep serving and the next client's job must finish.
    fn client_disconnect(self) -> Result<(u64, u64), String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let out = self.dir.join("disconnect.pl");
        Engine::run(self.serve_config("journal"), |h| -> Result<(), String> {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
            let addr = listener.local_addr().map_err(|e| e.to_string())?;
            let signal = CancelToken::new();
            let served = AtomicBool::new(false);
            // One pool worker runs the daemon's accept loop; the control
            // thread plays the clients.
            puffer_par::run_pool(
                1,
                |_| {
                    let _ = serve_listener(h, &listener, &signal);
                    served.store(true, Ordering::SeqCst);
                },
                || -> Result<(), String> {
                    // Client 1: half a submit line, then a hard drop.
                    let submit = format!(
                        "{{\"t\":\"submit\",\"design\":\"{}\"}}\n",
                        self.design_path.to_string_lossy()
                    );
                    let cut = 1 + (rng.gen_range(1..submit.len() as u64 - 1) as usize);
                    let mut torn = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                    torn.write_all(&submit.as_bytes()[..cut])
                        .map_err(|e| e.to_string())?;
                    drop(torn); // disconnect mid-line

                    // Client 2: a full session on a fresh connection.
                    let spec = self.spec(Some(&out), None);
                    let mut client = Client::connect(addr)?;
                    let id = client.submit(&spec)?;
                    let record = client.wait(id)?;
                    if !record.contains("serve.result") {
                        return Err(format!("job after disconnect did not complete: {record}"));
                    }
                    verify_pool(h)?;
                    Ok(())
                },
                || signal.cancel(),
            )
            .map_err(|p| format!("chaos client panicked: {p}"))?
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "job-after-disconnect")?;
        Ok((1, 0))
    }

    /// Shutdown mid-job (crash equivalent), tear the journal tail at a
    /// seeded byte, restart over the same directory: the job must resume
    /// and finish bit-identically.
    fn kill_restart(self) -> Result<(u64, u64), String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let out = self.dir.join("killed.pl");
        let cfg = self.serve_config("journal");
        let journal = cfg.journal_dir.join("job-1").join("run.pj");
        Engine::run(cfg.clone(), |h| -> Result<(), String> {
            let (id, _) = h
                .submit(self.spec(Some(&out), None))
                .map_err(|r| format!("submit: {}", r.detail))?;
            // Kill as soon as the first checkpoint hits the disk.
            let deadline = puffer_budget::clock::Deadline::after(WAIT);
            while !journal.exists() {
                if deadline.expired() {
                    return Err("job never checkpointed".into());
                }
                if h.status(id).map(|s| s.state.terminal()).unwrap_or(false) {
                    break; // tiny designs can finish first; still a legal end state
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            h.shutdown();
            Ok(())
        })
        .map_err(|e| e.to_string())??;

        let interrupted = !cfg.journal_dir.join("job-1").join("result.json").exists();
        if interrupted && journal.exists() {
            // Torn tail: append a prefix of the journal's own record, cut
            // at a seeded byte — exactly what a crash mid-append leaves.
            let text = fs::read_to_string(&journal).map_err(|e| e.to_string())?;
            let cut = 1 + (rng.gen_range(0..text.len() as u64 - 1) as usize);
            let mut f = fs::OpenOptions::new()
                .append(true)
                .open(&journal)
                .map_err(|e| e.to_string())?;
            f.write_all(&text.as_bytes()[..cut]).map_err(|e| e.to_string())?;
        }

        Engine::run(cfg, |h| -> Result<(), String> {
            let record = wait_terminal(h, 1)?;
            expect_state(h, 1, JobState::Done, &record)?;
            verify_pool(h)?;
            h.drain();
            Ok(())
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "resume-after-kill")?;
        Ok((1, 0))
    }

    /// ENOSPC is injected on a seeded guarded write of the first attempt —
    /// a checkpoint save (the flow errors, classifies transient, and the
    /// retry resumes) or a journal record (the flush surfaces a warning
    /// and the attempt completes). Either way the job must end `Done`
    /// with a bit-identical placement and the fault must have fired.
    fn disk_full(self) -> Result<(u64, u64), String> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Guarded writes come thick mid-flow (journal records, checkpoint
        // saves), so a small seeded skip always lands inside the run.
        let at = rng.gen_range(0..4) as usize;
        let out = self.dir.join("disk-full.pl");
        Engine::run(self.serve_config("journal"), |h| -> Result<(), String> {
            let (id, _) = h
                .submit(self.spec(Some(&out), Some(format!("disk-full@{at}"))))
                .map_err(|r| format!("submit: {}", r.detail))?;
            let record = wait_terminal(h, id)?;
            expect_state(h, id, JobState::Done, &record)?;
            if fsx::fault::armed() {
                fsx::fault::disarm();
                return Err(format!("disk-full fault at write {at} never fired"));
            }
            verify_pool(h)?;
            h.drain();
            Ok(())
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "recover-after-disk-full")?;
        Ok((1, 0))
    }

    /// A checkpoint's commit rename fails (the first save succeeds, the
    /// second save's rename is injected to fail), the engine is killed as
    /// soon as the fault has fired, and a restart over the same directory
    /// must resume from the surviving checkpoint and finish
    /// bit-identically.
    fn rename_restart(self) -> Result<(u64, u64), String> {
        let out = self.dir.join("rename-restart.pl");
        let cfg = self.serve_config("journal");
        Engine::run(cfg.clone(), |h| -> Result<(), String> {
            let (id, _) = h
                .submit(self.spec(Some(&out), Some("rename-fail@1".into())))
                .map_err(|r| format!("submit: {}", r.detail))?;
            // Kill as soon as the rename fault has fired (attempt 1 has a
            // good checkpoint from save 1 and a failed commit at save 2).
            let deadline = puffer_budget::clock::Deadline::after(WAIT);
            while fsx::fault::armed() {
                if h.status(id).map(|s| s.state.terminal()).unwrap_or(false) {
                    break; // tiny designs can finish first; still a legal end state
                }
                if deadline.expired() {
                    fsx::fault::disarm();
                    return Err("rename fault never fired".into());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            h.shutdown();
            Ok(())
        })
        .map_err(|e| e.to_string())??;

        Engine::run(cfg, |h| -> Result<(), String> {
            let record = wait_terminal(h, 1)?;
            expect_state(h, 1, JobState::Done, &record)?;
            verify_pool(h)?;
            h.drain();
            Ok(())
        })
        .map_err(|e| e.to_string())??;
        self.check_reference(&out, "restart-after-rename-fault")?;
        Ok((1, 0))
    }
}

fn flow_config(max_iters: usize) -> PufferConfig {
    let mut c = PufferConfig::default();
    c.placer.max_iters = max_iters;
    c.placer.threads = 1;
    c.estimator.threads = 1;
    c
}

fn wait_terminal(handle: &EngineHandle<'_>, id: u64) -> Result<String, String> {
    handle
        .wait(id, Some(WAIT))
        .map_err(|e| format!("job {id} stuck ({e:?}) — possible deadlock"))
}

fn expect_state(
    handle: &EngineHandle<'_>,
    id: u64,
    want: JobState,
    record: &str,
) -> Result<(), String> {
    let got = handle
        .status(id)
        .map(|s| s.state)
        .ok_or_else(|| format!("job {id} unknown"))?;
    if got != want {
        return Err(format!("job {id}: state {got:?}, wanted {want:?} ({record})"));
    }
    Ok(())
}

/// The pool-size invariant: fault injection must never leak or kill a
/// worker thread.
fn verify_pool(handle: &EngineHandle<'_>) -> Result<(), String> {
    let live = handle.live_workers();
    let want = handle.workers();
    if live != want {
        return Err(format!("worker pool corrupted: {live} live of {want}"));
    }
    Ok(())
}

/// A minimal blocking protocol client used by the disconnect scenario.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        Ok(Client { stream })
    }

    fn request(&mut self, line: &str) -> Result<String, String> {
        use std::io::BufRead;
        self.stream
            .write_all(line.as_bytes())
            .map_err(|e| e.to_string())?;
        let mut reader = std::io::BufReader::new(
            self.stream.try_clone().map_err(|e| e.to_string())?,
        );
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| e.to_string())?;
        Ok(response)
    }

    fn submit(&mut self, spec: &JobSpec) -> Result<u64, String> {
        // A spec record doubles as a submit request: same fields, `t` is
        // remapped.
        let line = spec.render().replacen("\"t\":\"job.spec\"", "\"t\":\"submit\"", 1);
        let response = self.request(&(line + "\n"))?;
        let rec = puffer_trace::parse_record(response.trim())
            .map_err(|e| format!("bad accept response: {e}"))?;
        if rec.kind() != Some("serve.accepted") {
            return Err(format!("submit rejected: {response}"));
        }
        rec.num("id")
            .map(|v| v as u64)
            .ok_or_else(|| format!("accept without id: {response}"))
    }

    fn wait(&mut self, id: u64) -> Result<String, String> {
        self.request(&format!(
            "{{\"t\":\"wait\",\"id\":{id},\"timeout_s\":{}}}\n",
            WAIT.as_secs()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_seeds_cover_every_fault_class() {
        let cfg = ChaosConfig {
            seeds: 6,
            cells: 160,
            max_iters: 60,
            workers: 2,
            dir: std::env::temp_dir().join("puffer-serve-chaos-test"),
        };
        let mut lines = Vec::new();
        let summary = run_chaos(&cfg, |l| lines.push(l.to_string())).unwrap();
        assert_eq!(summary.rounds, 6);
        assert_eq!(summary.injections, [1, 1, 1, 1, 1, 1]);
        assert_eq!(summary.completed, 6);
        assert_eq!(summary.failed, 1);
        assert_eq!(lines.len(), 6, "{lines:?}");
    }
}
