//! A bounded MPMC admission queue with explicit backpressure.
//!
//! The serve engine's admission path never buffers unboundedly: a full
//! queue rejects the push with [`PushError::Full`] so the protocol layer
//! can tell the client *why* (reject-with-reason), instead of letting the
//! daemon's memory footprint track a misbehaving submitter. Consumers poll
//! with a timeout so worker loops can interleave shutdown checks.

use puffer_budget::clock::Deadline;
use puffer_budget::lockcheck::{classes, lock_ordered, Locked};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should reject the work item
    /// back to its producer with this reason.
    Full {
        /// The configured capacity, for the rejection message.
        capacity: usize,
    },
    /// The queue was closed; no further items are admitted.
    Closed,
}

/// What a timed pop observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Empty,
    /// The queue is closed: consumers should wind down. Items still queued
    /// at close time are deliberately *not* handed out — a closing engine
    /// leaves them journaled on disk for the next start.
    Closed,
}

/// The bounded queue (see the module docs).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` (≥ 1) items at a time.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    // A worker panicking between lock and unlock poisons the mutex; the
    // queue state is a VecDeque whose operations never leave it half-moved,
    // so recovering the guard is sound (lock_ordered does exactly that).
    fn lock(&self) -> Locked<'_, State<T>> {
        lock_ordered(&self.state, &classes::SERVE_QUEUE)
    }

    /// Admits `item` without blocking, returning the new queue length.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the explicit-backpressure path) and
    /// [`PushError::Closed`] after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        s.items.push_back(item);
        let len = s.items.len();
        drop(s);
        self.cv.notify_one();
        Ok(len)
    }

    /// Admits `item` ignoring the capacity bound. Recovery-scan use only:
    /// jobs journaled by a previous process were already admitted once and
    /// must not be dropped because the restart found more of them than the
    /// live admission window allows.
    pub fn restore(&self, item: T) {
        let mut s = self.lock();
        if s.closed {
            return;
        }
        s.items.push_back(item);
        drop(s);
        self.cv.notify_one();
    }

    /// Dequeues one item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Deadline::after(timeout);
        let mut s = self.lock();
        loop {
            if s.closed {
                return Popped::Closed;
            }
            if let Some(item) = s.items.pop_front() {
                return Popped::Item(item);
            }
            if deadline.expired() {
                return Popped::Empty;
            }
            // The condvar wait releases the mutex; split off the class
            // record for the wait and re-attach it on wake-up.
            let (guard, _) = self
                .cv
                .wait_timeout(s.into_guard(), deadline.remaining())
                .unwrap_or_else(PoisonError::into_inner);
            s = Locked::from_guard(guard, &classes::SERVE_QUEUE);
        }
    }

    /// Removes a queued item matching `pred` (first match), e.g. a job
    /// cancelled before any worker picked it up. Returns whether one was
    /// removed.
    pub fn remove_where(&self, pred: impl Fn(&T) -> bool) -> bool {
        let mut s = self.lock();
        if let Some(pos) = s.items.iter().position(pred) {
            s.items.remove(pos);
            return true;
        }
        false
    }

    /// Closes the queue: pending and future pops observe [`Popped::Closed`]
    /// and pushes fail. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backpressure_rejects_with_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
        assert_eq!(q.len(), 2);
        // Draining one slot re-opens admission.
        assert_eq!(q.pop_timeout(Duration::ZERO), Popped::Item(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn restore_ignores_capacity_for_recovered_work() {
        let q = BoundedQueue::new(1);
        q.restore(1);
        q.restore(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 1 }));
    }

    #[test]
    fn pop_times_out_then_sees_items() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Popped::<u64>::Empty);
        q.try_push(7u64).unwrap();
        assert_eq!(q.pop_timeout(Duration::ZERO), Popped::Item(7));
    }

    #[test]
    fn close_wakes_waiters_and_stops_admission() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        // Closed beats queued items: leftovers stay journaled on disk.
        assert_eq!(q.pop_timeout(Duration::from_secs(1)), Popped::Closed);
    }

    #[test]
    fn cancelled_items_can_be_removed_while_queued() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(q.remove_where(|i| *i == 1));
        assert!(!q.remove_where(|i| *i == 1));
        assert_eq!(q.pop_timeout(Duration::ZERO), Popped::Item(2));
    }
}
