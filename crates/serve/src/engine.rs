//! The job engine: a bounded worker pool that runs placement/eval jobs
//! with panic isolation, retry, cancellation, and crash recovery.
//!
//! One [`Engine::run`] call owns everything: it scans the journal
//! directory for jobs a previous process left behind (re-enqueueing any
//! that never reached a terminal state), spins up `workers` threads on
//! the shared [`BoundedQueue`], runs the caller's `control` closure (the
//! protocol loop) on the calling thread, and tears the pool down when
//! control returns. All shared state lives on [`Engine::run`]'s stack and
//! is borrowed by the scoped workers — no `Arc`, no leaked threads.
//!
//! Every job ends in exactly one of three legal end states:
//!
//! 1. **completed result** — `result.json` holds a `serve.result` record
//!    (or a `serve.error` with class `cancelled` for client cancellation);
//! 2. **resumable checkpoint** — no `result.json`, but `spec.json` (and
//!    usually `run.pj`) survive, so the next start re-enqueues the job and
//!    [`Job::run_or_resume`] replays it bit-identically from the journal;
//! 3. **structured error** — `result.json` holds a `serve.error` record
//!    naming the fault class and attempt count.
//!
//! Fault handling per attempt: a worker panic is caught at the job
//! boundary ([`puffer_par::run_isolated`]) and classified as transient,
//! like journal-write and I/O failures; transient faults retry with
//! exponential backoff up to `max_attempts`, resuming from the last good
//! checkpoint. Flow and spec errors are permanent and fail the job
//! immediately with a structured record.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use puffer_budget::clock::Deadline;
use puffer_budget::lockcheck::{classes, lock_ordered, Locked};
use std::time::Duration;

use puffer::{evaluate_bounded, CheckpointPolicy, FlowResult, Job, PufferConfig, PufferError};
use puffer_budget::fsx;
use puffer_budget::{Budget, CancelToken, ChaosPlan, FaultClass};
use puffer_db::design::Design;
use puffer_db::io::{read_design, read_placement, write_placement};
use puffer_route::{RouteReport, RouterConfig};
use puffer_trace::{parse_record, Trace};

use crate::proto::{JobKind, JobSpec, JsonLine};
use crate::queue::{BoundedQueue, Popped, PushError};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Engine settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission-queue capacity; a full queue rejects submissions with an
    /// explicit reason instead of buffering unboundedly.
    pub queue_capacity: usize,
    /// Directory holding one `job-<id>/` journal per job.
    pub journal_dir: PathBuf,
    /// Checkpoint cadence (GP iterations) for place jobs.
    pub checkpoint_every: usize,
    /// Attempts per job before a transient fault becomes a permanent
    /// failure.
    pub max_attempts: usize,
    /// Base backoff delay; attempt `n` retries after `backoff * 2^(n-1)`.
    pub backoff: Duration,
    /// Engine telemetry sink.
    pub trace: Trace,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            journal_dir: PathBuf::from("puffer-serve"),
            checkpoint_every: 10,
            max_attempts: 3,
            backoff: Duration::from_millis(50),
            trace: Trace::disabled(),
        }
    }
}

// ---------------------------------------------------------------------------
// Job bookkeeping
// ---------------------------------------------------------------------------

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing an attempt.
    Running,
    /// Finished with a result record.
    Done,
    /// Cancelled by a client.
    Cancelled,
    /// Failed with a structured error record.
    Failed,
}

impl JobState {
    /// Whether the state is final.
    pub fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }

    /// Protocol name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    attempts: usize,
    token: CancelToken,
    client_cancel: bool,
    terminal_record: Option<String>,
    message: String,
}

impl JobEntry {
    fn new(spec: JobSpec) -> Self {
        JobEntry {
            spec,
            state: JobState::Queued,
            attempts: 0,
            token: CancelToken::new(),
            client_cancel: false,
            terminal_record: None,
            message: String::new(),
        }
    }
}

/// A point-in-time view of one job, for `status` responses.
#[derive(Debug, Clone)]
pub struct StatusView {
    /// Job id.
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// Attempts started so far.
    pub attempts: usize,
    /// Terminal record line, once the job is terminal.
    pub terminal_record: Option<String>,
    /// Human-readable progress/error note.
    pub message: String,
}

/// Why a submission was rejected (explicit backpressure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// Machine-readable reason: `queue-full`, `draining`, `bad-spec`, `io`.
    pub reason: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// Jobs queued at rejection time.
    pub queued: usize,
    /// Admission-queue capacity.
    pub capacity: usize,
}

/// Why [`EngineHandle::wait`] returned without a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// No job with that id.
    UnknownJob,
    /// The timeout elapsed before the job reached a terminal state.
    Timeout,
}

/// What [`Engine::run`] can fail with.
#[derive(Debug)]
pub enum EngineError {
    /// The journal directory could not be created or scanned.
    Io(String),
    /// The control closure panicked (worker panics never surface here —
    /// they fail the job they were running, not the engine).
    ControlPanic(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(m) => write!(f, "journal directory: {m}"),
            EngineError::ControlPanic(m) => write!(f, "control loop panicked: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

// ---------------------------------------------------------------------------
// Shared engine state (stack-allocated, borrowed by scoped workers)
// ---------------------------------------------------------------------------

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<u64>,
    jobs: Mutex<BTreeMap<u64, JobEntry>>,
    terminal_cv: Condvar,
    next_id: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    live_workers: AtomicUsize,
}

impl Shared {
    // Job entries are plain data; a panic between lock and unlock cannot
    // leave them half-updated, so recovering a poisoned guard is sound.
    fn jobs(&self) -> Locked<'_, BTreeMap<u64, JobEntry>> {
        lock_ordered(&self.jobs, &classes::SERVE_JOBS)
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.journal_dir.join(format!("job-{id}"))
    }

    /// Moves a job to a terminal state: persists the record as
    /// `result.json` (atomically), updates the in-memory entry, and wakes
    /// every `wait`/`drain` caller.
    fn finalize(&self, id: u64, state: JobState, record: String) {
        let path = self.job_dir(id).join("result.json");
        if let Err(e) = write_atomic(&path, &(record.clone() + "\n")) {
            // The in-memory state must still become terminal or waiters
            // hang; the record survives in memory for this process's
            // lifetime and the job will re-run after a restart.
            self.cfg
                .trace
                .record("serve.warn")
                .int("id", id as i64)
                .str("what", "result-write-failed")
                .str("error", &e.to_string())
                .write();
        }
        let mut jobs = self.jobs();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.state = state;
            entry.terminal_record = Some(record);
        }
        drop(jobs);
        self.terminal_cv.notify_all();
    }
}

/// Atomic file replacement with the workspace crash discipline (temp
/// sibling + fsync + rename + parent-dir fsync); see [`fsx::atomic_write`].
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    fsx::atomic_write(path, text.as_bytes())
}

// ---------------------------------------------------------------------------
// Terminal records
// ---------------------------------------------------------------------------

fn place_record(id: u64, result: &FlowResult, out: Option<&str>) -> String {
    JsonLine::new("serve.result")
        .int("id", id as i64)
        .str("state", "done")
        .str("kind", "place")
        .num("hpwl", result.hpwl)
        .int("gp_iterations", result.gp_iterations as i64)
        .int("pad_rounds", result.pad_rounds as i64)
        .int("cancelled", i64::from(result.cancelled))
        .num("runtime_s", result.runtime_s)
        .opt_str("out", out)
        .finish()
}

fn eval_record(id: u64, report: &RouteReport) -> String {
    JsonLine::new("serve.result")
        .int("id", id as i64)
        .str("state", "done")
        .str("kind", "eval")
        .num("hof_pct", report.hof_pct)
        .num("vof_pct", report.vof_pct)
        .num("wirelength", report.wirelength)
        .int("overflow_gcells", report.overflow_gcells as i64)
        .int("rounds", report.rounds as i64)
        .finish()
}

fn error_record(id: u64, class: &str, attempts: usize, message: &str) -> String {
    let state = if class == "cancelled" { "cancelled" } else { "failed" };
    JsonLine::new("serve.error")
        .int("id", id as i64)
        .str("state", state)
        .str("class", class)
        .int("attempts", attempts as i64)
        .str("message", message)
        .finish()
}

/// Reads the job state back out of a persisted terminal record.
fn state_of_record(record: &str) -> JobState {
    match parse_record(record) {
        Ok(rec) => match rec.kind() {
            Some("serve.result") => JobState::Done,
            Some("serve.error") if rec.str_field("class") == Some("cancelled") => {
                JobState::Cancelled
            }
            _ => JobState::Failed,
        },
        Err(_) => JobState::Failed,
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The job engine entry point (see the module docs).
pub struct Engine;

impl Engine {
    /// Runs the engine: recovery scan, worker pool up, `control` on the
    /// calling thread, pool down when `control` returns. Jobs still queued
    /// (or interrupted by [`EngineHandle::shutdown`]) when control returns
    /// stay journaled on disk and are re-enqueued by the next `run` on the
    /// same journal directory.
    ///
    /// # Errors
    ///
    /// [`EngineError::Io`] when the journal directory cannot be prepared,
    /// [`EngineError::ControlPanic`] when `control` itself panics.
    pub fn run<T>(
        cfg: ServeConfig,
        control: impl FnOnce(&EngineHandle<'_>) -> T,
    ) -> Result<T, EngineError> {
        fs::create_dir_all(&cfg.journal_dir).map_err(|e| EngineError::Io(e.to_string()))?;
        let workers = cfg.workers.max(1);
        let shared = Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            jobs: Mutex::new(BTreeMap::new()),
            terminal_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            live_workers: AtomicUsize::new(0),
            cfg,
        };
        recover_scan(&shared).map_err(|e| EngineError::Io(e.to_string()))?;
        puffer_par::run_pool(
            workers,
            |_idx| worker_loop(&shared),
            || control(&EngineHandle { shared: &shared }),
            || shared.queue.close(),
        )
        .map_err(|p| EngineError::ControlPanic(p.to_string()))
    }
}

/// Scans the journal directory and rebuilds the job table: jobs with a
/// `result.json` come back terminal; jobs with only a `spec.json` were
/// interrupted (queued or mid-run at crash time) and are re-enqueued —
/// their `run.pj` checkpoint journal, if any, makes the re-run resume
/// instead of restart.
fn recover_scan(shared: &Shared) -> std::io::Result<()> {
    let mut max_id = 0u64;
    let mut resumed = 0usize;
    let mut terminal = 0usize;
    let mut requeue: Vec<u64> = Vec::new();
    for entry in fs::read_dir(&shared.cfg.journal_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("job-"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let dir = entry.path();
        let spec_text = match fs::read_to_string(dir.join("spec.json")) {
            Ok(t) => t,
            Err(_) => continue, // a job dir without a readable spec is inert
        };
        let spec = match JobSpec::parse(spec_text.trim_end()) {
            Ok(s) => s,
            Err(e) => {
                shared
                    .cfg
                    .trace
                    .record("serve.warn")
                    .int("id", id as i64)
                    .str("what", "spec-unreadable")
                    .str("error", &e)
                    .write();
                continue;
            }
        };
        max_id = max_id.max(id);
        let mut job = JobEntry::new(spec);
        match fs::read_to_string(dir.join("result.json")) {
            Ok(text) => {
                let record = text.trim_end().to_string();
                job.state = state_of_record(&record);
                job.terminal_record = Some(record);
                terminal += 1;
            }
            Err(_) => {
                // The interrupted attempt's telemetry may end mid-line (the
                // crash signature). Decode it with the shared torn-tail rule
                // so recovery reports what survived; a torn tail never
                // blocks the re-run, which truncates run.jsonl anyway.
                if let Ok(run) =
                    fsx::read_journal_tail_tolerant(&dir.join("run.jsonl"), fsx::RecordShape::Line)
                {
                    shared
                        .cfg
                        .trace
                        .record("serve.recover-job")
                        .int("id", id as i64)
                        .int("run_records", run.len() as i64)
                        .int("torn_tail", i64::from(run.dropped_torn_tail()))
                        .write();
                }
                requeue.push(id);
                resumed += 1;
            }
        }
        shared.jobs().insert(id, job);
    }
    // Re-admit interrupted jobs in id order, bypassing the admission cap:
    // they were all admitted once already.
    requeue.sort_unstable();
    for id in requeue {
        shared.queue.restore(id);
    }
    shared.next_id.store(max_id + 1, Ordering::Relaxed);
    if resumed + terminal > 0 {
        shared
            .cfg
            .trace
            .record("serve.recovered")
            .int("resumed", resumed as i64)
            .int("terminal", terminal as i64)
            .write();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    shared.live_workers.fetch_add(1, Ordering::SeqCst);
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(100)) {
            Popped::Closed => break,
            Popped::Empty => {
                if shared.draining.load(Ordering::SeqCst) && shared.queue.is_empty() {
                    break;
                }
            }
            Popped::Item(id) => run_job(shared, id),
        }
    }
    shared.live_workers.fetch_sub(1, Ordering::SeqCst);
}

/// How one attempt ended.
enum Attempt {
    Place(Box<FlowResult>),
    Eval(Box<RouteReport>),
}

struct ExecError {
    class: &'static str,
    transient: bool,
    message: String,
}

impl ExecError {
    fn spec(message: String) -> Self {
        ExecError {
            class: "spec",
            transient: false,
            message,
        }
    }

    fn io(message: String) -> Self {
        ExecError {
            class: "io",
            transient: true,
            message,
        }
    }
}

fn classify(err: PufferError) -> ExecError {
    let (class, transient) = match &err {
        PufferError::Journal(_) => ("journal", true),
        PufferError::Stalled(_) => ("stalled", true),
        PufferError::Place(_)
        | PufferError::Legalize(_)
        | PufferError::Resume(_)
        | PufferError::Validate(_) => ("flow", false),
    };
    ExecError {
        class,
        transient,
        message: err.to_string(),
    }
}

/// Runs one job to a terminal state — or leaves it resumable when a
/// shutdown interrupts it mid-attempt.
fn run_job(shared: &Shared, id: u64) {
    loop {
        // Snapshot the entry state under the lock, run outside it.
        let (spec, token, attempt) = {
            let mut jobs = shared.jobs();
            let Some(entry) = jobs.get_mut(&id) else { return };
            if entry.state.terminal() {
                return; // cancelled while queued, already finalized
            }
            if entry.client_cancel {
                let record = error_record(id, "cancelled", entry.attempts, "cancelled by client");
                drop(jobs);
                shared.finalize(id, JobState::Cancelled, record);
                return;
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                // Leave the job resumable: spec.json (and any run.pj) stay
                // on disk; the next start re-enqueues it.
                entry.state = JobState::Queued;
                return;
            }
            entry.state = JobState::Running;
            entry.attempts += 1;
            entry.message = format!("attempt {}", entry.attempts);
            (entry.spec.clone(), entry.token.clone(), entry.attempts)
        };

        let outcome = puffer_par::run_isolated(|| execute(shared, id, &spec, &token, attempt))
            .map_err(|p| ExecError {
                class: "panic",
                transient: true,
                message: p.to_string(),
            })
            .and_then(|r| r);

        match outcome {
            Ok(attempt_result) => {
                let (client_cancel, attempts) = {
                    let jobs = shared.jobs();
                    match jobs.get(&id) {
                        Some(e) => (e.client_cancel, e.attempts),
                        None => return,
                    }
                };
                if client_cancel {
                    let record = error_record(id, "cancelled", attempts, "cancelled by client");
                    shared.finalize(id, JobState::Cancelled, record);
                    return;
                }
                if shared.shutdown.load(Ordering::SeqCst) && token.is_cancelled() {
                    // Interrupted mid-run by shutdown: no result.json, so
                    // the checkpoints written this attempt seed the resume
                    // after restart.
                    if let Some(e) = shared.jobs().get_mut(&id) {
                        e.state = JobState::Queued;
                    }
                    return;
                }
                let record = match attempt_result {
                    Attempt::Place(result) => {
                        match write_out(&spec, &result) {
                            Ok(()) => {}
                            Err(e) => {
                                if !retry_or_fail(shared, id, &token, e) {
                                    return;
                                }
                                continue;
                            }
                        }
                        place_record(id, &result, spec.out.as_deref())
                    }
                    Attempt::Eval(report) => eval_record(id, &report),
                };
                shared.finalize(id, JobState::Done, record);
                return;
            }
            Err(e) => {
                shared
                    .cfg
                    .trace
                    .record("serve.retry")
                    .int("id", id as i64)
                    .int("attempt", attempt as i64)
                    .str("class", e.class)
                    .str("error", &e.message)
                    .write();
                if !retry_or_fail(shared, id, &token, e) {
                    return;
                }
            }
        }
    }
}

/// Decides what a failed attempt does next: `true` to retry (after the
/// backoff sleep), `false` when the job was finalized or left resumable.
fn retry_or_fail(shared: &Shared, id: u64, token: &CancelToken, err: ExecError) -> bool {
    let attempts = {
        let mut jobs = shared.jobs();
        match jobs.get_mut(&id) {
            Some(e) => {
                e.message = format!("attempt {} {}: {}", e.attempts, err.class, err.message);
                e.attempts
            }
            None => return false,
        }
    };
    if !err.transient || attempts >= shared.cfg.max_attempts {
        let record = error_record(id, err.class, attempts, &err.message);
        shared.finalize(id, JobState::Failed, record);
        return false;
    }
    // Exponential backoff, interruptible by cancellation and shutdown.
    let delay = shared.cfg.backoff * 2u32.saturating_pow(attempts.saturating_sub(1) as u32);
    let deadline = Deadline::after(delay);
    while !deadline.expired() {
        if token.is_cancelled() || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10).min(deadline.remaining()));
    }
    true // the next loop iteration re-checks cancel/shutdown under the lock
}

/// Loads the design named by a spec (file, inline text, or preset).
fn load_design(spec: &JobSpec) -> Result<Design, ExecError> {
    if let Some(path) = &spec.design {
        let f = fs::File::open(path).map_err(|e| ExecError::io(format!("open {path}: {e}")))?;
        return read_design(std::io::BufReader::new(f))
            .map_err(|e| ExecError::spec(format!("design {path}: {e}")));
    }
    if let Some(text) = &spec.design_text {
        return read_design(text.as_bytes())
            .map_err(|e| ExecError::spec(format!("inline design: {e}")));
    }
    if let Some(name) = &spec.preset {
        let scale = spec.scale.unwrap_or(1.0);
        let cfg = puffer_gen::presets::by_name(name, scale)
            .map_err(|e| ExecError::spec(format!("preset '{name}': {e}")))?
            .ok_or_else(|| ExecError::spec(format!("unknown preset '{name}'")))?;
        return puffer_gen::generate(&cfg)
            .map_err(|e| ExecError::spec(format!("preset '{name}': {e}")));
    }
    Err(ExecError::spec("no design source".into()))
}

/// Chaos hooks: deterministic faults the chaos harness injects through
/// the spec's `chaos` tag.
fn arm_chaos(job: Job, tag: &str, attempt: usize) -> Result<Job, ExecError> {
    match tag {
        // Panic on the first attempt only — retry must succeed.
        "panic-once" if attempt == 1 => {
            std::panic::panic_any("chaos: injected worker panic (once)".to_string())
        }
        "panic-once" => Ok(job),
        // Panic every attempt — the job must fail with a structured error.
        "panic" => std::panic::panic_any("chaos: injected worker panic".to_string()),
        t => {
            if let Some(at) = t.strip_prefix("journal-write@") {
                let at: usize = at
                    .parse()
                    .map_err(|_| ExecError::spec(format!("bad chaos tag '{t}'")))?;
                // First attempt only: the retry resumes past the fault.
                if attempt == 1 {
                    return Ok(job.with_chaos(ChaosPlan {
                        class: FaultClass::JournalWrite,
                        at,
                        magnitude: 1,
                    }));
                }
                Ok(job)
            } else if let Some(at) = t.strip_prefix("disk-full@") {
                let at: usize = at
                    .parse()
                    .map_err(|_| ExecError::spec(format!("bad chaos tag '{t}'")))?;
                // First attempt only: ENOSPC on the at-th guarded write
                // after this point (checkpoint saves and journal records
                // are the guarded writers on this thread's flow).
                if attempt == 1 {
                    fsx::fault::arm(FaultClass::DiskFull, at);
                }
                Ok(job)
            } else if let Some(at) = t.strip_prefix("rename-fail@") {
                let at: usize = at
                    .parse()
                    .map_err(|_| ExecError::spec(format!("bad chaos tag '{t}'")))?;
                // First attempt only: the at-th atomic-write commit rename
                // after this point fails (the first renames after arming
                // are checkpoint saves).
                if attempt == 1 {
                    fsx::fault::arm(FaultClass::RenameFail, at);
                }
                Ok(job)
            } else {
                Err(ExecError::spec(format!("unknown chaos tag '{t}'")))
            }
        }
    }
}

/// One attempt of one job, on the worker thread (panics are caught by the
/// caller's `run_isolated` wrapper).
fn execute(
    shared: &Shared,
    id: u64,
    spec: &JobSpec,
    token: &CancelToken,
    attempt: usize,
) -> Result<Attempt, ExecError> {
    let dir = shared.job_dir(id);
    let design = load_design(spec)?;
    let budget = match spec.deadline_s {
        Some(s) => Budget::with_deadline(Duration::from_secs_f64(s)),
        None => Budget::unbounded(),
    }
    .with_token(token.clone());
    let trace = Trace::with_sink(dir.join("run.jsonl"))
        .map_err(|e| ExecError::io(format!("trace sink: {e}")))?;

    match spec.kind {
        JobKind::Place => {
            let mut config = PufferConfig::default();
            if let Some(n) = spec.max_iters {
                config.placer.max_iters = n;
            }
            if let Some(n) = spec.threads {
                config.placer.threads = n;
                config.estimator.threads = n;
            }
            let mut job = Job::new(config)
                .with_budget(budget)
                .with_trace(trace.clone())
                .with_checkpoints(CheckpointPolicy {
                    path: dir.join("run.pj"),
                    every: shared.cfg.checkpoint_every,
                    keep_history: false,
                });
            if let Some(tag) = &spec.chaos {
                job = arm_chaos(job, tag, attempt)?;
            }
            let result = job.run_or_resume(&design).map_err(classify)?;
            surface_flush(shared, id, &trace);
            Ok(Attempt::Place(Box::new(result)))
        }
        JobKind::Eval => {
            let placement_path = spec.placement.as_deref().unwrap_or_default();
            let f = fs::File::open(placement_path)
                .map_err(|e| ExecError::io(format!("open {placement_path}: {e}")))?;
            let placement =
                read_placement(std::io::BufReader::new(f), design.netlist().num_cells())
                    .map_err(|e| ExecError::spec(format!("placement {placement_path}: {e}")))?;
            let mut router = RouterConfig::default();
            if let Some(n) = spec.threads {
                router.threads = n;
            }
            let report = evaluate_bounded(&design, &placement, &router, &budget, &trace);
            surface_flush(shared, id, &trace);
            Ok(Attempt::Eval(Box::new(report)))
        }
    }
}

/// Settles a job's `run.jsonl` sink: a flush (fsync) failure is surfaced as
/// a structured `serve.warn` record on the server trace rather than being
/// silently discarded — the job result itself is already safe.
fn surface_flush(shared: &Shared, id: u64, trace: &Trace) {
    if let Err(e) = trace.flush() {
        shared
            .cfg
            .trace
            .record("serve.warn")
            .int("id", id as i64)
            .str("what", "run-jsonl-flush-failed")
            .str("error", &e.to_string())
            .write();
    }
}

/// Writes the final placement where the spec asked for it.
fn write_out(spec: &JobSpec, result: &FlowResult) -> Result<(), ExecError> {
    let Some(path) = &spec.out else { return Ok(()) };
    let mut buf = Vec::new();
    write_placement(&result.placement, &mut buf)
        .map_err(|e| ExecError::io(format!("render placement: {e}")))?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    write_atomic(Path::new(path), &text).map_err(|e| ExecError::io(format!("write {path}: {e}")))
}

// ---------------------------------------------------------------------------
// Control side
// ---------------------------------------------------------------------------

/// The control closure's handle on the running engine.
pub struct EngineHandle<'a> {
    shared: &'a Shared,
}

impl EngineHandle<'_> {
    /// Submits a job: validates the spec, journals it as
    /// `job-<id>/spec.json`, and admits it to the queue. Returns the job
    /// id and the queue length after admission.
    ///
    /// # Errors
    ///
    /// A [`Reject`] naming why: `bad-spec`, `draining`, `queue-full`
    /// (the explicit-backpressure path), or `io`.
    pub fn submit(&self, spec: JobSpec) -> Result<(u64, usize), Reject> {
        let reject = |reason: &'static str, detail: String| Reject {
            reason,
            detail,
            queued: self.shared.queue.len(),
            capacity: self.shared.queue.capacity(),
        };
        if let Err(e) = spec.validate() {
            return Err(reject("bad-spec", e));
        }
        if self.shared.draining.load(Ordering::SeqCst) {
            return Err(reject("draining", "daemon is draining; not admitting jobs".into()));
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        let dir = self.shared.job_dir(id);
        let journal = fs::create_dir_all(&dir)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                write_atomic(&dir.join("spec.json"), &(spec.render() + "\n"))
                    .map_err(|e| e.to_string())
            });
        if let Err(e) = journal {
            let _ = fs::remove_dir_all(&dir);
            return Err(reject("io", format!("journal job {id}: {e}")));
        }
        self.shared.jobs().insert(id, JobEntry::new(spec));
        match self.shared.queue.try_push(id) {
            Ok(len) => Ok((id, len)),
            Err(push) => {
                // Roll the admission back completely so a rejected job
                // leaves no trace in memory or on disk.
                self.shared.jobs().remove(&id);
                let _ = fs::remove_dir_all(&dir);
                Err(match push {
                    PushError::Full { capacity } => Reject {
                        reason: "queue-full",
                        detail: format!("admission queue at capacity {capacity}"),
                        queued: capacity,
                        capacity,
                    },
                    PushError::Closed => {
                        reject("draining", "daemon is shutting down".into())
                    }
                })
            }
        }
    }

    /// Cancels a job: a queued job is finalized as cancelled immediately
    /// (and the cancellation persists across restarts via its
    /// `result.json`); a running job gets its cancel token tripped and
    /// finalizes as cancelled at the next cooperative cancellation point.
    /// Terminal jobs are left as-is. Returns the state after the call.
    ///
    /// # Errors
    ///
    /// When no job has that id.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let action = {
            let mut jobs = self.shared.jobs();
            let Some(entry) = jobs.get_mut(&id) else {
                return Err(format!("no job {id}"));
            };
            if entry.state.terminal() {
                return Ok(entry.state);
            }
            entry.client_cancel = true;
            entry.token.cancel();
            let attempts = entry.attempts;
            (entry.state, attempts)
        };
        match action {
            (JobState::Queued, attempts) => {
                self.shared.queue.remove_where(|queued| *queued == id);
                let record = error_record(id, "cancelled", attempts, "cancelled by client");
                self.shared.finalize(id, JobState::Cancelled, record);
                Ok(JobState::Cancelled)
            }
            (state, _) => Ok(state), // a worker will observe the token/flag
        }
    }

    /// A snapshot of one job.
    pub fn status(&self, id: u64) -> Option<StatusView> {
        self.shared.jobs().get(&id).map(|e| StatusView {
            id,
            state: e.state,
            attempts: e.attempts,
            terminal_record: e.terminal_record.clone(),
            message: e.message.clone(),
        })
    }

    /// Snapshots of every known job, in id order.
    pub fn statuses(&self) -> Vec<StatusView> {
        self.shared
            .jobs()
            .iter()
            .map(|(id, e)| StatusView {
                id: *id,
                state: e.state,
                attempts: e.attempts,
                terminal_record: e.terminal_record.clone(),
                message: e.message.clone(),
            })
            .collect()
    }

    /// Blocks until a job reaches a terminal state, returning its terminal
    /// record line.
    ///
    /// # Errors
    ///
    /// [`WaitError::UnknownJob`] or [`WaitError::Timeout`].
    pub fn wait(&self, id: u64, timeout: Option<Duration>) -> Result<String, WaitError> {
        let deadline = timeout.map(Deadline::after);
        let mut jobs = self.shared.jobs();
        loop {
            match jobs.get(&id) {
                None => return Err(WaitError::UnknownJob),
                Some(e) if e.state.terminal() => {
                    return Ok(e
                        .terminal_record
                        .clone()
                        .unwrap_or_else(|| error_record(id, "internal", e.attempts, "no record")));
                }
                Some(_) => {}
            }
            let step = match deadline {
                Some(d) => {
                    if d.expired() {
                        return Err(WaitError::Timeout);
                    }
                    d.remaining().min(Duration::from_millis(200))
                }
                None => Duration::from_millis(200),
            };
            // The condvar wait releases the mutex, so the class record is
            // split off for the wait and re-attached on wake-up.
            let (guard, _) = self
                .shared
                .terminal_cv
                .wait_timeout(jobs.into_guard(), step)
                .unwrap_or_else(PoisonError::into_inner);
            jobs = Locked::from_guard(guard, &classes::SERVE_JOBS);
        }
    }

    /// Graceful drain: stops admitting, then blocks until every known job
    /// is terminal (queued jobs still run to completion).
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        let mut jobs = self.shared.jobs();
        while !jobs.values().all(|e| e.state.terminal()) {
            let (guard, _) = self
                .shared
                .terminal_cv
                .wait_timeout(jobs.into_guard(), Duration::from_millis(200))
                .unwrap_or_else(PoisonError::into_inner);
            jobs = Locked::from_guard(guard, &classes::SERVE_JOBS);
        }
    }

    /// Fast shutdown: stops admitting, trips every non-terminal job's
    /// cancel token, and returns. Running jobs checkpoint and stop at
    /// their next cancellation point *without* writing a result, so they
    /// (and everything still queued) re-enqueue and resume on the next
    /// [`Engine::run`] over the same journal directory.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let jobs = self.shared.jobs();
        for entry in jobs.values() {
            if !entry.state.terminal() {
                entry.token.cancel();
            }
        }
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Admission-queue capacity.
    pub fn capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Worker threads currently alive in the pool (the chaos harness
    /// asserts this equals the configured pool size: panics must be
    /// isolated per job, never cost a worker).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.load(Ordering::SeqCst)
    }

    /// Configured pool size.
    pub fn workers(&self) -> usize {
        self.shared.cfg.workers.max(1)
    }

    /// The journal directory this engine persists jobs under.
    pub fn journal_dir(&self) -> &Path {
        &self.shared.cfg.journal_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::io::write_design;
    use puffer_gen::{generate, GeneratorConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("puffer-serve-engine").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_design_file(dir: &Path) -> (PathBuf, Design) {
        let design = generate(&GeneratorConfig {
            num_cells: 220,
            num_nets: 240,
            num_macros: 1,
            utilization: 0.6,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let path = dir.join("design.pd");
        let mut buf = Vec::new();
        write_design(&design, &mut buf).unwrap();
        fs::write(&path, &buf).unwrap();
        (path, design)
    }

    fn quick_spec(design: &Path, out: Option<PathBuf>) -> JobSpec {
        JobSpec {
            design: Some(design.to_string_lossy().into_owned()),
            max_iters: Some(60),
            threads: Some(1),
            out: out.map(|p| p.to_string_lossy().into_owned()),
            ..JobSpec::default()
        }
    }

    fn cfg(dir: &Path) -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 4,
            journal_dir: dir.join("journal"),
            checkpoint_every: 10,
            max_attempts: 3,
            backoff: Duration::from_millis(5),
            trace: Trace::disabled(),
        }
    }

    #[test]
    fn submit_run_wait_roundtrip_and_result_persists() {
        let dir = tmp_dir("roundtrip");
        let (design, _) = small_design_file(&dir);
        let out = dir.join("out.pl");
        let record = Engine::run(cfg(&dir), |h| {
            let (id, queued) = h.submit(quick_spec(&design, Some(out.clone()))).unwrap();
            assert_eq!((id, queued), (1, 1));
            let record = h.wait(id, Some(Duration::from_secs(60))).unwrap();
            assert_eq!(h.status(id).unwrap().state, JobState::Done);
            h.drain();
            record
        })
        .unwrap();
        let rec = parse_record(&record).unwrap();
        assert_eq!(rec.kind(), Some("serve.result"));
        assert_eq!(rec.num("v"), Some(2.0));
        assert!(rec.num("hpwl").unwrap() > 0.0);
        assert!(out.exists(), "out placement written");
        // The same record was journaled as result.json.
        let on_disk = fs::read_to_string(dir.join("journal/job-1/result.json")).unwrap();
        assert_eq!(on_disk.trim_end(), record);
    }

    #[test]
    fn bad_specs_and_full_queues_reject_with_reasons() {
        let dir = tmp_dir("reject");
        Engine::run(cfg(&dir), |h| {
            let r = h.submit(JobSpec::default()).unwrap_err();
            assert_eq!(r.reason, "bad-spec");
            // Fill the queue with specs that point at a non-existent file;
            // they will churn through retries slowly enough to observe the
            // backpressure path with a tiny queue.
            let ghost = JobSpec {
                design: Some(dir.join("ghost.pd").to_string_lossy().into_owned()),
                ..JobSpec::default()
            };
            let mut saw_full = false;
            for _ in 0..64 {
                if let Err(r) = h.submit(ghost.clone()) {
                    assert_eq!(r.reason, "queue-full");
                    assert_eq!(r.capacity, 4);
                    saw_full = true;
                    break;
                }
            }
            assert!(saw_full, "queue never reported Full");
            h.drain();
        })
        .unwrap();
    }

    #[test]
    fn missing_design_fails_structured_after_retries() {
        let dir = tmp_dir("retries");
        Engine::run(cfg(&dir), |h| {
            let spec = JobSpec {
                design: Some(dir.join("nope.pd").to_string_lossy().into_owned()),
                ..JobSpec::default()
            };
            let (id, _) = h.submit(spec).unwrap();
            let record = h.wait(id, Some(Duration::from_secs(30))).unwrap();
            let rec = parse_record(&record).unwrap();
            assert_eq!(rec.kind(), Some("serve.error"));
            assert_eq!(rec.str_field("class"), Some("io"));
            assert_eq!(rec.num("attempts"), Some(3.0));
            assert_eq!(h.status(id).unwrap().state, JobState::Failed);
            h.drain();
        })
        .unwrap();
    }

    #[test]
    fn worker_panic_is_isolated_and_retry_succeeds() {
        let dir = tmp_dir("panic");
        let (design, _) = small_design_file(&dir);
        Engine::run(cfg(&dir), |h| {
            let mut spec = quick_spec(&design, None);
            spec.chaos = Some("panic-once".into());
            let (id, _) = h.submit(spec).unwrap();
            let record = h.wait(id, Some(Duration::from_secs(60))).unwrap();
            let rec = parse_record(&record).unwrap();
            assert_eq!(rec.kind(), Some("serve.result"), "retry after panic: {record}");
            assert_eq!(h.live_workers(), h.workers(), "panic cost a worker");

            let mut spec = quick_spec(&design, None);
            spec.chaos = Some("panic".into());
            let (id, _) = h.submit(spec).unwrap();
            let record = h.wait(id, Some(Duration::from_secs(60))).unwrap();
            let rec = parse_record(&record).unwrap();
            assert_eq!(rec.kind(), Some("serve.error"));
            assert_eq!(rec.str_field("class"), Some("panic"));
            assert_eq!(rec.num("attempts"), Some(3.0));
            assert_eq!(h.live_workers(), h.workers());
            h.drain();
        })
        .unwrap();
    }

    #[test]
    fn cancel_queued_job_persists_across_restart() {
        let dir = tmp_dir("cancel");
        let (design, _) = small_design_file(&dir);
        let mut one_worker = cfg(&dir);
        one_worker.workers = 1;
        Engine::run(one_worker.clone(), |h| {
            // Occupy the lone worker, then cancel a queued job behind it.
            let (running, _) = h.submit(quick_spec(&design, None)).unwrap();
            let (queued, _) = h.submit(quick_spec(&design, None)).unwrap();
            assert_eq!(h.cancel(queued), Ok(JobState::Cancelled));
            let record = h.wait(queued, Some(Duration::from_secs(10))).unwrap();
            assert_eq!(state_of_record(&record), JobState::Cancelled);
            let _ = h.wait(running, Some(Duration::from_secs(60))).unwrap();
            h.drain();
        })
        .unwrap();
        // Restart over the same journal: the cancelled job stays cancelled.
        Engine::run(one_worker, |h| {
            assert_eq!(h.status(2).unwrap().state, JobState::Cancelled);
            assert_eq!(h.status(1).unwrap().state, JobState::Done);
            h.drain();
        })
        .unwrap();
    }

    #[test]
    fn shutdown_leaves_jobs_resumable_and_restart_finishes_them() {
        let dir = tmp_dir("resume");
        let (design, design_val) = small_design_file(&dir);
        // Reference: the same flow uninterrupted.
        let mut config = PufferConfig::default();
        config.placer.max_iters = 60;
        config.placer.threads = 1;
        config.estimator.threads = 1;
        let reference = Job::new(config).run(&design_val).unwrap();

        let out = dir.join("resumed.pl");
        let mut one_worker = cfg(&dir);
        one_worker.workers = 1;
        one_worker.checkpoint_every = 5;
        Engine::run(one_worker.clone(), |h| {
            let (id, _) = h.submit(quick_spec(&design, Some(out.clone()))).unwrap();
            // Let the job get past at least one checkpoint, then shut down.
            let journal = h.journal_dir().join(format!("job-{id}")).join("run.pj");
            let deadline = Deadline::after(Duration::from_secs(60));
            while !journal.exists() && !deadline.expired() {
                std::thread::sleep(Duration::from_millis(10));
            }
            assert!(journal.exists(), "job never checkpointed");
            h.shutdown();
        })
        .unwrap();
        assert!(!out.exists(), "interrupted job must not publish a result");

        Engine::run(one_worker, |h| {
            let record = h.wait(1, Some(Duration::from_secs(60))).unwrap();
            assert_eq!(state_of_record(&record), JobState::Done);
            h.drain();
        })
        .unwrap();
        let resumed = fs::read(&out).unwrap();
        let mut want = Vec::new();
        write_placement(&reference.placement, &mut want).unwrap();
        assert_eq!(resumed, want, "resumed placement must be bit-identical");
    }

    #[test]
    fn eval_jobs_report_routing_metrics() {
        let dir = tmp_dir("eval");
        let (design, _) = small_design_file(&dir);
        let out = dir.join("placed.pl");
        Engine::run(cfg(&dir), |h| {
            let (place, _) = h.submit(quick_spec(&design, Some(out.clone()))).unwrap();
            let _ = h.wait(place, Some(Duration::from_secs(60))).unwrap();
            let spec = JobSpec {
                kind: JobKind::Eval,
                design: Some(design.to_string_lossy().into_owned()),
                placement: Some(out.to_string_lossy().into_owned()),
                threads: Some(1),
                ..JobSpec::default()
            };
            let (id, _) = h.submit(spec).unwrap();
            let record = h.wait(id, Some(Duration::from_secs(60))).unwrap();
            let rec = parse_record(&record).unwrap();
            assert_eq!(rec.kind(), Some("serve.result"));
            assert_eq!(rec.str_field("kind"), Some("eval"));
            assert!(rec.num("wirelength").unwrap() > 0.0);
            h.drain();
        })
        .unwrap();
    }
}
