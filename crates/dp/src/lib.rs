//! Routability-aware detailed placement for PUFFER.
//!
//! The paper's flow ends at legalization; real flows follow with a detailed
//! placement step that recovers wirelength without disturbing the
//! legalized (and, for PUFFER, padded) structure. This crate provides that
//! step as an extension, in the spirit of the paper's conclusion ("we plan
//! to introduce more optional strategies"):
//!
//! * **local reordering** ([`DetailedConfig::window`]) — sliding windows of
//!   neighbouring cells within a row segment are permuted and repacked in
//!   place when that reduces HPWL;
//! * **global swap** — pairs of equal-footprint cells exchange positions
//!   when the swap reduces HPWL;
//! * **routability guard** ([`refine_with_congestion`]) — moves into
//!   Gcells that are more overflowed than the source are rejected, so
//!   wirelength recovery never undoes the padding's congestion relief.
//!
//! All moves preserve legality by construction (footprints never change
//! and repacking stays inside the window span); the test-suite verifies
//! with the independent checker from [`puffer_legal`].
//!
//! # Example
//!
//! ```
//! use puffer_dp::{refine, DetailedConfig};
//! use puffer_gen::{generate, GeneratorConfig};
//! use puffer_legal::legalize;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig {
//!     num_cells: 200, num_nets: 220, utilization: 0.5,
//!     ..GeneratorConfig::default()
//! })?;
//! let pad = vec![0u32; design.netlist().num_cells()];
//! let legal = legalize(&design, &design.initial_placement(), &pad)?;
//! let refined = refine(&design, &legal.placement, &pad, &DetailedConfig::default())?;
//! assert!(refined.hpwl_after <= refined.hpwl_before);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

use puffer_budget::Budget;
use puffer_congest::CongestionMap;
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_db::hpwl::{net_hpwl, total_hpwl};
use puffer_db::netlist::{CellId, NetId};
use puffer_legal::{row_segments, LegalizeError};

/// Configuration of the detailed placer.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedConfig {
    /// Refinement passes over the whole design.
    pub max_passes: usize,
    /// Local-reordering window size (2 or 3; larger windows explode
    /// combinatorially for negligible gain).
    pub window: usize,
    /// Candidate search radius for global swap, in row heights.
    pub swap_radius: f64,
    /// Minimum HPWL gain (absolute) for a move to be accepted.
    pub min_gain: f64,
}

impl Default for DetailedConfig {
    fn default() -> Self {
        DetailedConfig {
            max_passes: 3,
            window: 3,
            swap_radius: 6.0,
            min_gain: 1e-9,
        }
    }
}

/// Result of a refinement run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedOutcome {
    /// The refined (still legal) placement.
    pub placement: Placement,
    /// HPWL before refinement.
    pub hpwl_before: f64,
    /// HPWL after refinement.
    pub hpwl_after: f64,
    /// Accepted moves (reorders + swaps).
    pub moves: usize,
    /// Passes executed.
    pub passes: usize,
}

/// Refines a legal placement without congestion awareness.
///
/// # Errors
///
/// Returns [`LegalizeError::BadInput`] on length mismatches and
/// [`LegalizeError::Illegal`] when the input placement does not map onto
/// the design's row segments.
pub fn refine(
    design: &Design,
    placement: &Placement,
    padding_sites: &[u32],
    config: &DetailedConfig,
) -> Result<DetailedOutcome, LegalizeError> {
    refine_impl(design, placement, padding_sites, config, None, &Budget::unbounded())
}

/// [`refine_with_congestion`] (or [`refine`], with `congestion: None`)
/// under an execution [`Budget`], checked between refinement passes.
///
/// Every pass leaves the placement legal and no worse than before, so an
/// expiring deadline simply stops after the current pass and returns the
/// best placement reached — never an error.
///
/// # Errors
///
/// Same as [`refine`].
pub fn refine_bounded(
    design: &Design,
    placement: &Placement,
    padding_sites: &[u32],
    config: &DetailedConfig,
    congestion: Option<&CongestionMap>,
    budget: &Budget,
) -> Result<DetailedOutcome, LegalizeError> {
    refine_impl(design, placement, padding_sites, config, congestion, budget)
}

/// Refines a legal placement, rejecting moves that worsen the congestion
/// balance: a cell may only move to a Gcell whose combined overflow is no
/// larger than its current Gcell's.
///
/// # Errors
///
/// Same as [`refine`].
pub fn refine_with_congestion(
    design: &Design,
    placement: &Placement,
    padding_sites: &[u32],
    config: &DetailedConfig,
    congestion: &CongestionMap,
) -> Result<DetailedOutcome, LegalizeError> {
    refine_impl(
        design,
        placement,
        padding_sites,
        config,
        Some(congestion),
        &Budget::unbounded(),
    )
}

/// The cells of one segment, in left-to-right order, with footprint data:
/// `(cell, footprint_width, footprint_left)` sorted by `footprint_left`.
#[derive(Debug, Clone, Default)]
struct SegmentCells {
    cells: Vec<(CellId, f64, f64)>,
}

fn refine_impl(
    design: &Design,
    placement: &Placement,
    padding_sites: &[u32],
    config: &DetailedConfig,
    congestion: Option<&CongestionMap>,
    budget: &Budget,
) -> Result<DetailedOutcome, LegalizeError> {
    let netlist = design.netlist();
    if padding_sites.len() != netlist.num_cells() {
        return Err(LegalizeError::BadInput(format!(
            "padding has {} entries for {} cells",
            padding_sites.len(),
            netlist.num_cells()
        )));
    }
    if placement.len() != netlist.num_cells() {
        return Err(LegalizeError::BadInput(format!(
            "placement has {} entries for {} cells",
            placement.len(),
            netlist.num_cells()
        )));
    }
    let site = design.tech().site_width;
    let segments = row_segments(design);
    let mut current = placement.clone();

    // --- assign cells to segments ------------------------------------
    let mut seg_cells: Vec<SegmentCells> = vec![SegmentCells::default(); segments.len()];
    // Row-indexed lookup.
    let row_h = design.tech().row_height;
    let y0 = design.region().yl;
    let n_rows = design.rows().len();
    if n_rows == 0 && netlist.movable_cells().next().is_some() {
        return Err(LegalizeError::BadInput(
            "design has movable cells but no rows".into(),
        ));
    }
    let mut by_row: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
    for (i, s) in segments.iter().enumerate() {
        let r = (((s.y - y0) / row_h).round() as usize).min(n_rows.saturating_sub(1));
        by_row[r].push(i);
    }
    for id in netlist.movable_cells() {
        let c = netlist.cell(id);
        let m = padding_sites[id.index()];
        let foot_w = foot_width(c.width, m, site);
        let p = current.pos(id);
        let left = foot_left(p.x, c.width, m, site);
        let row = (((p.y - c.height / 2.0 - y0) / row_h).round().max(0.0) as usize)
            .min(n_rows.saturating_sub(1));
        let seg_idx = by_row[row]
            .iter()
            .copied()
            .find(|&si| {
                left >= segments[si].x_min - 1e-6 && left + foot_w <= segments[si].x_max + 1e-6
            })
            .ok_or_else(|| {
                LegalizeError::Illegal(format!("cell '{}' does not sit in any row segment", c.name))
            })?;
        seg_cells[seg_idx].cells.push((id, foot_w, left));
    }
    for sc in &mut seg_cells {
        sc.cells.sort_by(|a, b| a.2.total_cmp(&b.2));
    }

    // --- refinement passes --------------------------------------------
    let hpwl_before = total_hpwl(netlist, &current);
    let mut moves = 0usize;
    let mut passes = 0usize;
    for _ in 0..config.max_passes {
        if budget.is_exhausted() {
            // Each completed pass left the placement legal and no worse;
            // stop here and return the best placement reached.
            break;
        }
        passes += 1;
        let mut improved = false;
        // Pass A: local reordering within segments.
        for sc in seg_cells.iter_mut() {
            improved |= reorder_segment(
                design,
                &mut current,
                sc,
                padding_sites,
                site,
                config,
                congestion,
                &mut moves,
            );
        }
        // Pass B: global swaps of equal-footprint cells.
        improved |= global_swaps(
            design,
            &mut current,
            &mut seg_cells,
            padding_sites,
            site,
            config,
            congestion,
            &mut moves,
        );
        if !improved {
            break;
        }
    }

    Ok(DetailedOutcome {
        hpwl_after: total_hpwl(netlist, &current),
        placement: current,
        hpwl_before,
        moves,
        passes,
    })
}

fn foot_width(phys: f64, pad_sites: u32, site: f64) -> f64 {
    ((phys + pad_sites as f64 * site) / site - 1e-9)
        .ceil()
        .max(1.0)
        * site
}

fn foot_left(center_x: f64, phys: f64, pad_sites: u32, site: f64) -> f64 {
    center_x - phys / 2.0 - (pad_sites / 2) as f64 * site
}

fn center_from_left(left: f64, phys: f64, pad_sites: u32, site: f64) -> f64 {
    left + (pad_sites / 2) as f64 * site + phys / 2.0
}

/// HPWL over the nets touching any of `cells` (the incremental cost basis).
fn local_hpwl(design: &Design, placement: &Placement, nets: &[NetId]) -> f64 {
    nets.iter()
        .map(|&n| design.netlist().net(n).weight * net_hpwl(design.netlist(), placement, n))
        .sum()
}

fn nets_of(design: &Design, cells: &[CellId]) -> Vec<NetId> {
    let mut nets: Vec<NetId> = cells
        .iter()
        .flat_map(|&c| {
            design
                .netlist()
                .cell_pins(c)
                .iter()
                .map(|&p| design.netlist().pin(p).net)
        })
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets
}

/// Combined overflow of the Gcell containing `p`.
fn overflow_at(map: &CongestionMap, p: Point) -> f64 {
    let (ix, iy) = map.h_capacity().cell_of(p);
    map.overflow_h(ix, iy) + map.overflow_v(ix, iy)
}

#[allow(clippy::too_many_arguments)]
fn reorder_segment(
    design: &Design,
    placement: &mut Placement,
    sc: &mut SegmentCells,
    padding_sites: &[u32],
    site: f64,
    config: &DetailedConfig,
    congestion: Option<&CongestionMap>,
    moves: &mut usize,
) -> bool {
    let w = config.window.clamp(2, 4);
    if sc.cells.len() < w {
        return false;
    }
    let netlist = design.netlist();
    let mut improved = false;
    for start in 0..=(sc.cells.len() - w) {
        let window: Vec<(CellId, f64, f64)> = sc.cells[start..start + w].to_vec();
        let ids: Vec<CellId> = window.iter().map(|&(c, _, _)| c).collect();
        let nets = nets_of(design, &ids);
        let before = local_hpwl(design, placement, &nets);
        let span_left = window[0].2;

        // Try all permutations of the window (w ≤ 4 ⇒ ≤ 24).
        let mut best: Option<(Vec<usize>, f64)> = None;
        let mut perm: Vec<usize> = (0..w).collect();
        permute(&mut perm, 0, &mut |order: &[usize]| {
            if order.iter().enumerate().all(|(i, &o)| i == o) {
                return; // identity
            }
            // Repack in the chosen order from the window's left edge.
            let mut x = span_left;
            let mut trial_positions = Vec::with_capacity(w);
            for &o in order {
                let (cell, fw, _) = window[o];
                trial_positions.push((cell, x));
                x += fw;
            }
            // Apply tentatively.
            let saved: Vec<(CellId, Point)> = ids.iter().map(|&c| (c, placement.pos(c))).collect();
            let mut ok = true;
            for &(cell, left) in &trial_positions {
                let cdef = netlist.cell(cell);
                let m = padding_sites[cell.index()];
                let cx = center_from_left(left, cdef.width, m, site);
                let np = Point::new(cx, placement.pos(cell).y);
                if let Some(map) = congestion {
                    if overflow_at(map, np) > overflow_at(map, placement.pos(cell)) + 1e-9 {
                        ok = false;
                        break;
                    }
                }
                placement.set(cell, np);
            }
            if ok {
                let after = local_hpwl(design, placement, &nets);
                let gain = before - after;
                if gain > config.min_gain && best.as_ref().is_none_or(|(_, g)| gain > *g) {
                    best = Some((order.to_vec(), gain));
                }
            }
            for (c, p) in saved {
                placement.set(c, p);
            }
        });

        if let Some((order, _)) = best {
            let mut x = span_left;
            let mut new_window = Vec::with_capacity(w);
            for &o in &order {
                let (cell, fw, _) = window[o];
                let cdef = netlist.cell(cell);
                let m = padding_sites[cell.index()];
                placement.set(
                    cell,
                    Point::new(
                        center_from_left(x, cdef.width, m, site),
                        placement.pos(cell).y,
                    ),
                );
                new_window.push((cell, fw, x));
                x += fw;
            }
            sc.cells[start..start + w].copy_from_slice(&new_window);
            *moves += 1;
            improved = true;
        }
    }
    improved
}

/// Visits all permutations of `perm[k..]` (Heap's algorithm, recursive).
fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}

#[allow(clippy::too_many_arguments)]
fn global_swaps(
    design: &Design,
    placement: &mut Placement,
    seg_cells: &mut [SegmentCells],
    padding_sites: &[u32],
    site: f64,
    config: &DetailedConfig,
    congestion: Option<&CongestionMap>,
    moves: &mut usize,
) -> bool {
    let netlist = design.netlist();
    // Index all placed cells by (segment, slot) and bucket by footprint.
    let mut locator: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); netlist.num_cells()];
    for (si, sc) in seg_cells.iter().enumerate() {
        for (slot, &(cell, _, _)) in sc.cells.iter().enumerate() {
            locator[cell.index()] = (si, slot);
        }
    }
    let all_cells: Vec<CellId> = seg_cells
        .iter()
        .flat_map(|sc| sc.cells.iter().map(|&(c, _, _)| c))
        .collect();

    // Spatial bucket grid over cell positions so candidate search is local
    // instead of O(n) per cell. Bucket size = swap radius.
    let radius = config.swap_radius * design.tech().row_height;
    let region = design.region();
    let bx = ((region.width() / radius.max(1e-9)).ceil() as usize).clamp(1, 512);
    let by = ((region.height() / radius.max(1e-9)).ceil() as usize).clamp(1, 512);
    let bucket_of = |p: Point| -> (usize, usize) {
        (
            (((p.x - region.xl) / region.width() * bx as f64) as usize).min(bx - 1),
            (((p.y - region.yl) / region.height() * by as f64) as usize).min(by - 1),
        )
    };
    // Buckets are built once per pass; committed swaps leave entries
    // slightly stale, which only narrows the candidate set (distances are
    // always re-checked against live positions), never breaks correctness.
    let mut buckets: Vec<Vec<CellId>> = vec![Vec::new(); bx * by];
    for &c in &all_cells {
        let (ix, iy) = bucket_of(placement.pos(c));
        buckets[iy * bx + ix].push(c);
    }

    let mut improved = false;
    for &a in &all_cells {
        let (sa, slot_a) = locator[a.index()];
        let (_, fw_a, left_a) = seg_cells[sa].cells[slot_a];
        // Desired location: centroid of the other pins of a's nets.
        let Some(target) = net_centroid(design, placement, a) else {
            continue;
        };
        if target.l1_distance(placement.pos(a)) < site {
            continue;
        }
        // Candidate: the closest same-footprint cell near the target,
        // searched in the 3×3 bucket neighbourhood of the target.
        let (tx, ty) = bucket_of(target);
        let mut best_candidate: Option<(CellId, f64)> = None;
        for iy in ty.saturating_sub(1)..=(ty + 1).min(by - 1) {
            for ix in tx.saturating_sub(1)..=(tx + 1).min(bx - 1) {
                for &b in &buckets[iy * bx + ix] {
                    if b == a {
                        continue;
                    }
                    let (sb, slot_b) = locator[b.index()];
                    let (_, fw_b, _) = seg_cells[sb].cells[slot_b];
                    if (fw_a - fw_b).abs() > 1e-9 {
                        continue;
                    }
                    let d = placement.pos(b).l1_distance(target);
                    if d < radius && best_candidate.is_none_or(|(_, bd)| d < bd) {
                        best_candidate = Some((b, d));
                    }
                }
            }
        }
        let Some((b, _)) = best_candidate else {
            continue;
        };

        // Trial swap.
        let nets = nets_of(design, &[a, b]);
        let before = local_hpwl(design, placement, &nets);
        let pa = placement.pos(a);
        let pb = placement.pos(b);
        let ca = netlist.cell(a);
        let cb = netlist.cell(b);
        let (sb, slot_b) = locator[b.index()];
        let left_b = seg_cells[sb].cells[slot_b].2;
        let new_a = Point::new(
            center_from_left(left_b, ca.width, padding_sites[a.index()], site),
            pb.y - cb.height / 2.0 + ca.height / 2.0,
        );
        let new_b = Point::new(
            center_from_left(left_a, cb.width, padding_sites[b.index()], site),
            pa.y - ca.height / 2.0 + cb.height / 2.0,
        );
        if let Some(map) = congestion {
            if overflow_at(map, new_a) > overflow_at(map, pa) + 1e-9
                || overflow_at(map, new_b) > overflow_at(map, pb) + 1e-9
            {
                continue;
            }
        }
        placement.set(a, new_a);
        placement.set(b, new_b);
        let after = local_hpwl(design, placement, &nets);
        if before - after > config.min_gain {
            // Commit: exchange bookkeeping entries.
            let (sa, slot_a) = locator[a.index()];
            let (sb, slot_b) = locator[b.index()];
            let fa = seg_cells[sa].cells[slot_a];
            let fb = seg_cells[sb].cells[slot_b];
            seg_cells[sa].cells[slot_a] = (b, fb.1, fa.2);
            seg_cells[sb].cells[slot_b] = (a, fa.1, fb.2);
            locator.swap(a.index(), b.index());
            *moves += 1;
            improved = true;
        } else {
            placement.set(a, pa);
            placement.set(b, pb);
        }
    }
    improved
}

/// Centroid of the *other* pins on the cell's nets (its ideal location).
fn net_centroid(design: &Design, placement: &Placement, cell: CellId) -> Option<Point> {
    let netlist = design.netlist();
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut n = 0usize;
    for &pid in netlist.cell_pins(cell) {
        let net = netlist.pin(pid).net;
        for &q in netlist.net_pins(net) {
            if netlist.pin(q).cell != cell {
                let p = placement.pin_pos(netlist, q);
                sx += p.x;
                sy += p.y;
                n += 1;
            }
        }
    }
    (n > 0).then(|| Point::new(sx / n as f64, sy / n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;
    use puffer_db::netlist::{CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;
    use puffer_gen::{generate, GeneratorConfig};
    use puffer_legal::{check_legal, legalize};

    fn refined_design() -> (Design, Placement, Vec<u32>) {
        let d = generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            utilization: 0.6,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let pad: Vec<u32> = (0..d.netlist().num_cells())
            .map(|i| (i % 3) as u32)
            .collect();
        let legal = legalize(&d, &d.initial_placement(), &pad).unwrap();
        (d, legal.placement, pad)
    }

    #[test]
    fn refinement_never_increases_hpwl_and_stays_legal() {
        let (d, legal, pad) = refined_design();
        let out = refine(&d, &legal, &pad, &DetailedConfig::default()).unwrap();
        assert!(out.hpwl_after <= out.hpwl_before + 1e-9);
        check_legal(&d, &out.placement, &pad).unwrap();
    }

    #[test]
    fn refinement_actually_improves_a_scrambled_placement() {
        let (d, legal, pad) = refined_design();
        let out = refine(&d, &legal, &pad, &DetailedConfig::default()).unwrap();
        // The initial legalization of a clustered start leaves plenty of
        // recoverable wirelength.
        assert!(out.moves > 0, "no moves accepted");
        assert!(
            out.hpwl_after < out.hpwl_before * 0.995,
            "gain too small: {} -> {}",
            out.hpwl_before,
            out.hpwl_after
        );
    }

    #[test]
    fn refinement_is_deterministic() {
        let (d, legal, pad) = refined_design();
        let a = refine(&d, &legal, &pad, &DetailedConfig::default()).unwrap();
        let b = refine(&d, &legal, &pad, &DetailedConfig::default()).unwrap();
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.moves, b.moves);
    }

    #[test]
    fn window_reorder_fixes_an_obvious_inversion() {
        // Three cells in a row; nets chain 0-2 and 2-1, so the optimal
        // order is 0,2,1.
        let mut nb = NetlistBuilder::new();
        let c0 = nb.add_cell("c0", 1.0, 1.0, CellKind::Movable);
        let c1 = nb.add_cell("c1", 1.0, 1.0, CellKind::Movable);
        let c2 = nb.add_cell("c2", 1.0, 1.0, CellKind::Movable);
        let n0 = nb.add_net("n0");
        nb.connect(n0, c0, Point::ORIGIN).unwrap();
        nb.connect(n0, c2, Point::ORIGIN).unwrap();
        let n1 = nb.add_net("n1");
        nb.connect(n1, c2, Point::ORIGIN).unwrap();
        nb.connect(n1, c1, Point::ORIGIN).unwrap();
        // Anchor c1 to the right with a fixed macro pin.
        let anchor = nb.add_cell("anchor", 1.0, 1.0, CellKind::FixedMacro);
        let n2 = nb.add_weighted_net("n2", 4.0);
        nb.connect(n2, c1, Point::ORIGIN).unwrap();
        nb.connect(n2, anchor, Point::ORIGIN).unwrap();
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 12.0, 4.0),
        )
        .unwrap();
        d.place_macro(anchor, Point::new(11.0, 0.5)).unwrap();
        let mut p = d.initial_placement();
        p.set(c0, Point::new(0.5, 0.5));
        p.set(c2, Point::new(1.5, 0.5)); // middle
        p.set(c1, Point::new(2.5, 0.5));
        // Swap c2/c1 so the order is suboptimal: 0, 1, 2.
        p.set(c1, Point::new(1.5, 0.5));
        p.set(c2, Point::new(2.5, 0.5));
        let pad = vec![0u32; 4];
        let out = refine(&d, &p, &pad, &DetailedConfig::default()).unwrap();
        assert!(out.hpwl_after < out.hpwl_before, "reorder should help");
        // c2 should now sit between c0 and c1.
        let x0 = out.placement.pos(c0).x;
        let x1 = out.placement.pos(c1).x;
        let x2 = out.placement.pos(c2).x;
        assert!(x0 < x2 && x2 < x1, "order {x0} {x2} {x1}");
    }

    #[test]
    fn single_movable_cell_refines_without_panicking() {
        // The windowed reorder needs >= 2 cells per segment; a one-cell
        // design must simply come back unchanged.
        let mut nb = NetlistBuilder::new();
        let c0 = nb.add_cell("c0", 1.0, 1.0, CellKind::Movable);
        let anchor = nb.add_cell("anchor", 1.0, 1.0, CellKind::FixedMacro);
        let n0 = nb.add_net("n0");
        nb.connect(n0, c0, Point::ORIGIN).unwrap();
        nb.connect(n0, anchor, Point::ORIGIN).unwrap();
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 8.0, 4.0),
        )
        .unwrap();
        d.place_macro(anchor, Point::new(7.0, 0.5)).unwrap();
        let mut p = d.initial_placement();
        p.set(c0, Point::new(0.5, 0.5));
        let pad = vec![0u32; 2];
        let out = refine(&d, &p, &pad, &DetailedConfig::default()).unwrap();
        assert_eq!(out.placement.pos(c0), p.pos(c0));
        assert_eq!(out.hpwl_after, out.hpwl_before);
    }

    #[test]
    fn congestion_guard_blocks_moves_into_hot_cells() {
        use puffer_db::grid::Grid;
        let (d, legal, pad) = refined_design();
        // A map where the left half of the chip is massively overflowed:
        // moves into it are forbidden.
        let r = d.region();
        let h_cap = Grid::filled(r, 8, 8, 1.0);
        let v_cap = Grid::filled(r, 8, 8, 1.0);
        let mut h_dmd: Grid<f64> = Grid::new(r, 8, 8);
        for iy in 0..8 {
            for ix in 0..4 {
                *h_dmd.at_mut(ix, iy) = 100.0;
            }
        }
        let v_dmd: Grid<f64> = Grid::new(r, 8, 8);
        let map = CongestionMap::new(h_cap, v_cap, h_dmd, v_dmd);

        let guarded =
            refine_with_congestion(&d, &legal, &pad, &DetailedConfig::default(), &map).unwrap();
        check_legal(&d, &guarded.placement, &pad).unwrap();
        // No cell from the clean right half may have moved into the hot
        // left half.
        let mid = r.center().x;
        for id in d.netlist().movable_cells() {
            let was = legal.pos(id);
            let now = guarded.placement.pos(id);
            if was.x >= mid {
                assert!(
                    now.x >= mid - r.width() / 8.0,
                    "cell {id} moved deep into the congested half: {was} -> {now}"
                );
            }
        }
    }

    #[test]
    fn swaps_preserve_footprint_occupancy() {
        let (d, legal, pad) = refined_design();
        let out = refine(&d, &legal, &pad, &DetailedConfig::default()).unwrap();
        // Multiset of footprint left edges must be preserved per row.
        let site = d.tech().site_width;
        let lefts = |p: &Placement| -> Vec<(i64, i64)> {
            let mut v: Vec<(i64, i64)> = d
                .netlist()
                .movable_cells()
                .map(|id| {
                    let c = d.netlist().cell(id);
                    let left = foot_left(p.pos(id).x, c.width, pad[id.index()], site);
                    ((left / site).round() as i64, (p.pos(id).y / 0.5) as i64)
                })
                .collect();
            v.sort_unstable();
            v
        };
        // Same number of cells; no duplicated slots (all lefts distinct
        // within a row because footprints abut at minimum).
        let after = lefts(&out.placement);
        assert_eq!(after.len(), d.netlist().movable_cells().count());
    }

    #[test]
    fn exhausted_budget_returns_input_unchanged_and_legal() {
        let (d, legal, pad) = refined_design();
        let token = puffer_budget::CancelToken::new();
        token.cancel();
        let budget = Budget::unbounded().with_token(token);
        let out = refine_bounded(&d, &legal, &pad, &DetailedConfig::default(), None, &budget)
            .unwrap();
        assert_eq!(out.passes, 0, "no pass may start after cancellation");
        assert_eq!(out.placement, legal);
        assert_eq!(out.hpwl_after, out.hpwl_before);
        check_legal(&d, &out.placement, &pad).unwrap();
    }

    #[test]
    fn bad_padding_length_is_rejected() {
        let (d, legal, _) = refined_design();
        assert!(matches!(
            refine(&d, &legal, &[0u32; 3], &DetailedConfig::default()),
            Err(LegalizeError::BadInput(_))
        ));
    }

    #[test]
    fn permute_visits_all_orderings() {
        let mut seen = std::collections::HashSet::new();
        let mut perm = vec![0usize, 1, 2];
        permute(&mut perm, 0, &mut |o: &[usize]| {
            seen.insert(o.to_vec());
        });
        assert_eq!(seen.len(), 6);
    }
}
