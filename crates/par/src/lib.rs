//! Deterministic fork-join layer for PUFFER's parallel kernels.
//!
//! Every parallel loop in the workspace (wirelength gradient, density
//! scatter, 2D transforms, net decomposition, demand accumulation) goes
//! through this crate so there is exactly one chunking/join idiom and one
//! determinism argument:
//!
//! 1. **Fixed chunking by index.** [`chunk_ranges`] splits `0..n` into
//!    contiguous ranges whose boundaries depend only on `n` — never on the
//!    requested thread count. The thread count only decides how many
//!    workers consume the chunk list.
//! 2. **One result per chunk, in chunk order.** [`try_map_chunks`] returns
//!    a `Vec` with one entry per fixed chunk, ordered by chunk index,
//!    regardless of which worker computed it.
//! 3. **Ordered reduction, no atomics.** Callers fold the per-chunk partial
//!    buffers (or scalars) serially in chunk order, e.g. with
//!    [`merge_add`] / [`ordered_sum`]. Since the fold order and the chunk
//!    boundaries are both independent of the thread count, every f64
//!    addition happens with exactly the same operands in exactly the same
//!    parenthesization — the result is **bit-identical** for any
//!    `--threads` value in `1..=32`.
//!
//! Atomic f64 accumulation (compare-and-swap loops) would make the merge
//! order depend on scheduling and break checkpoints, golden metrics, and
//! SMBO trajectories; ordered reduction costs one extra pass over the
//! partial buffers and keeps them stable.
//!
//! Worker panics never unwind through `thread::scope` (which would abort
//! the process if a second worker also panicked): every handle is joined
//! first and the first panic message is reported as [`WorkerPanic`].

#![forbid(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use puffer_budget::{clamp_threads, default_threads, MAX_WORKER_THREADS};

/// A worker thread panicked; carries the panic message.
///
/// Crates wrap this in their own error enums (`RouteError::WorkerPanic`,
/// `CongestError::WorkerPanic`, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic(pub String);

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker thread panicked: {}", self.0)
    }
}

impl std::error::Error for WorkerPanic {}

/// Splits `0..n` into contiguous index ranges with boundaries that depend
/// only on `n`.
///
/// At most [`MAX_WORKER_THREADS`] chunks are produced (fewer when `n` is
/// small), so per-chunk partial buffers stay bounded. Because the
/// boundaries ignore the thread count, the same work items land in the
/// same chunk no matter how many workers run — the foundation of the
/// bit-identity guarantee.
pub fn chunk_ranges(n: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(MAX_WORKER_THREADS);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `work` over the fixed chunks of `0..n` on up to `threads` workers
/// and returns one result per chunk, in chunk-index order.
///
/// `threads` is clamped to `1..=`[`MAX_WORKER_THREADS`] and only controls
/// parallelism: each worker takes a contiguous span of the chunk list and
/// evaluates `work` once per chunk, so the set of `work` calls and the
/// order of the returned results are identical for every thread count.
/// With one worker (or one chunk) everything runs inline on the calling
/// thread — no spawn — but a panicking `work` still surfaces as `Err`,
/// matching the threaded path.
///
/// # Errors
///
/// [`WorkerPanic`] with the first observed panic message. All workers are
/// joined before reporting, so a second panicking worker cannot abort the
/// process by re-raising inside `thread::scope`.
pub fn try_map_chunks<T, F>(n: usize, threads: usize, work: F) -> Result<Vec<T>, WorkerPanic>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n);
    let threads = clamp_threads(threads).min(ranges.len().max(1));
    let span_len = ranges.len().div_ceil(threads).max(1);
    if threads <= 1 {
        // Inline fast path. AssertUnwindSafe is sound here because a
        // panicking chunk's partial results are dropped, never observed.
        return catch_unwind(AssertUnwindSafe(|| {
            ranges.into_iter().map(&work).collect::<Vec<T>>()
        }))
        .map_err(|payload| WorkerPanic(panic_message(&*payload)));
    }
    let spans: Vec<&[Range<usize>]> = ranges.chunks(span_len).collect();
    let joined = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| {
                scope.spawn(move || span.iter().map(|r| work(r.clone())).collect::<Vec<T>>())
            })
            .collect();
        join_workers(handles)
    });
    match joined {
        Ok(per_worker) => Ok(per_worker.into_iter().flatten().collect()),
        Err(msg) => Err(WorkerPanic(msg)),
    }
}

/// Infallible [`try_map_chunks`]: re-raises a worker panic on the calling
/// thread instead of returning it.
///
/// Use this from code whose callers cannot act on a [`WorkerPanic`] (the
/// GP kernels, the transforms); the panic propagates exactly as if the
/// loop had run serially.
pub fn map_chunks<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    match try_map_chunks(n, threads, work) {
        Ok(v) => v,
        Err(WorkerPanic(msg)) => std::panic::resume_unwind(Box::new(msg)),
    }
}

/// Adds `partial` into `out` element-wise.
///
/// Folding per-chunk partial buffers with this in chunk-index order is the
/// sanctioned deterministic reduction: the operand order per element is
/// fixed by the chunk boundaries, which [`chunk_ranges`] derives from `n`
/// alone.
///
/// # Panics
///
/// If the buffer lengths differ.
pub fn merge_add(out: &mut [f64], partial: &[f64]) {
    assert_eq!(out.len(), partial.len(), "partial buffer length mismatch");
    for (dst, src) in out.iter_mut().zip(partial) {
        *dst += *src;
    }
}

/// Left-fold sum in iteration order — the scalar counterpart of
/// [`merge_add`] for per-chunk partial sums.
pub fn ordered_sum(parts: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for v in parts {
        acc += v;
    }
    acc
}

/// Runs `f` on the current thread with panic isolation: a panic becomes a
/// [`WorkerPanic`] carrying the panic message instead of unwinding.
///
/// This is the per-unit-of-work isolation primitive behind the serve job
/// engine: a worker thread wraps each job body in `run_isolated`, so a
/// panicking job fails *that job* with a structured error while the worker
/// (and the pool) keeps running. `AssertUnwindSafe` is sound under the same
/// argument as the inline path of [`try_map_chunks`]: a panicking closure's
/// partial results are dropped, never observed. Callers sharing mutexes
/// with `f` must tolerate poison (e.g. `PoisonError::into_inner`).
///
/// # Errors
///
/// [`WorkerPanic`] with the panic message when `f` panics.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, WorkerPanic> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| WorkerPanic(panic_message(&*payload)))
}

/// Runs a pool of `workers` copies of `work` on scoped threads while
/// `control` runs on the calling thread, and joins every worker before
/// returning `control`'s result.
///
/// This is the long-lived-pool counterpart of [`try_map_chunks`]: instead
/// of splitting a fixed index space, each worker is a loop (typically
/// draining a shared queue) that exits when the caller's own shutdown
/// condition fires. The contract that makes the join safe:
///
/// * `stop` is **always** invoked after `control` finishes — even when
///   `control` panics (the panic is caught and reported as `Err`). `stop`
///   must make every `work` loop exit (close the queue, set a flag), or the
///   join blocks forever.
/// * A panicking `work` loop terminates only that worker; the panic is
///   swallowed at the pool boundary (per-job isolation inside the loop is
///   the caller's responsibility via [`run_isolated`]). Callers that care
///   about pool integrity should count live workers and compare against
///   `workers` — the serve chaos harness does exactly this.
///
/// `workers` is clamped to `1..=`[`MAX_WORKER_THREADS`].
///
/// # Errors
///
/// [`WorkerPanic`] when `control` itself panicked; workers are still
/// stopped and joined first, so the pool never leaks.
pub fn run_pool<T, W, C, S>(workers: usize, work: W, control: C, stop: S) -> Result<T, WorkerPanic>
where
    W: Fn(usize) + Sync,
    C: FnOnce() -> T,
    S: FnOnce(),
{
    let workers = clamp_threads(workers);
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|idx| {
                scope.spawn(move || {
                    let _ = run_isolated(|| work(idx));
                })
            })
            .collect();
        let out = run_isolated(control);
        stop();
        for h in handles {
            // Worker bodies are isolated above; join cannot see a panic.
            let _ = h.join();
        }
        out
    })
}

/// Joins every worker before reporting, converting panics to messages.
///
/// Draining all handles matters: re-panicking on the first `join()` (the
/// old `expect` path) starts unwinding inside `thread::scope`, and if a
/// second worker also panicked the scope's drop re-raises it mid-unwind,
/// aborting the process. Here the first panic message is returned as an
/// `Err` after every worker has stopped.
fn join_workers<T>(handles: Vec<std::thread::ScopedJoinHandle<'_, T>>) -> Result<Vec<T>, String> {
    let mut out = Vec::with_capacity(handles.len());
    let mut first_panic: Option<String> = None;
    for h in handles {
        match h.join() {
            Ok(v) => out.push(v),
            Err(payload) => {
                if first_panic.is_none() {
                    // `&*payload`: reborrow the boxed payload itself — a
                    // plain `&payload` would coerce the `Box` into the
                    // `dyn Any` and every downcast would miss.
                    first_panic = Some(panic_message(&*payload));
                }
            }
        }
    }
    match first_panic {
        None => Ok(out),
        Some(m) => Err(m),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_tile_the_index_space() {
        for n in [0usize, 1, 2, 31, 32, 33, 100, 2300, 65536] {
            let ranges = chunk_ranges(n);
            assert!(ranges.len() <= MAX_WORKER_THREADS, "n={n}");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "gap/overlap at n={n}");
                assert!(r.end > r.start, "empty chunk at n={n}");
                next = r.end;
            }
            assert_eq!(next, n, "coverage at n={n}");
        }
    }

    #[test]
    fn results_arrive_in_chunk_order_for_every_thread_count() {
        let expected = chunk_ranges(1000);
        for t in [1usize, 2, 3, 7, 8, 32, 64] {
            let got = map_chunks(1000, t, |r| r.clone());
            assert_eq!(got, expected, "threads={t}");
        }
    }

    #[test]
    fn ordered_reduction_is_bit_identical_across_thread_counts() {
        // Awkward magnitudes so any change in addition order flips bits.
        let data: Vec<f64> = (0..4096)
            .map(|i| ((i as f64) * 0.37 + 1.0e-7).sin() * 10f64.powi((i % 13) - 6))
            .collect();
        let n_bins = 17;
        let run = |threads: usize| -> (Vec<u64>, u64) {
            let partials = map_chunks(data.len(), threads, |r| {
                let mut bins = vec![0.0f64; n_bins];
                let mut total = 0.0f64;
                for i in r {
                    bins[i % n_bins] += data[i];
                    total += data[i];
                }
                (bins, total)
            });
            let mut bins = vec![0.0f64; n_bins];
            for (p, _) in &partials {
                merge_add(&mut bins, p);
            }
            let total = ordered_sum(partials.iter().map(|(_, t)| *t));
            (
                bins.iter().map(|v| v.to_bits()).collect(),
                total.to_bits(),
            )
        };
        let baseline = run(1);
        for t in [2usize, 3, 5, 8, 16, 32] {
            assert_eq!(run(t), baseline, "threads={t}");
        }
    }

    #[test]
    fn panicking_chunks_become_an_error_not_an_abort() {
        // Two panicking chunks: the second must not abort the process
        // while the scope unwinds from the first.
        let err = try_map_chunks(64, 4, |r| {
            if r.contains(&3) {
                panic!("worker one exploded");
            }
            if r.contains(&40) {
                std::panic::panic_any("worker two exploded".to_string());
            }
            r.len()
        })
        .unwrap_err();
        assert!(err.0.contains("exploded"), "{err}");
        assert!(err.to_string().contains("worker thread panicked"), "{err}");
    }

    #[test]
    fn inline_path_reports_panics_like_the_threaded_path() {
        let err = try_map_chunks(10, 1, |r| {
            if r.contains(&3) {
                panic!("inline chunk exploded");
            }
            r.len()
        })
        .unwrap_err();
        assert!(err.0.contains("inline chunk exploded"), "{err}");
    }

    #[test]
    #[should_panic(expected = "re-raised")]
    fn map_chunks_re_raises_worker_panics() {
        let _ = map_chunks(8, 2, |r| {
            if r.start == 0 {
                panic!("re-raised");
            }
            r.len()
        });
    }

    #[test]
    fn zero_items_yield_no_chunks() {
        let got: Vec<usize> = map_chunks(0, 8, |r| r.len());
        assert!(got.is_empty());
        assert!(chunk_ranges(0).is_empty());
    }

    #[test]
    fn run_isolated_returns_values_and_captures_panics() {
        assert_eq!(run_isolated(|| 41 + 1), Ok(42));
        let err = run_isolated(|| -> usize { panic!("job exploded") }).unwrap_err();
        assert!(err.0.contains("job exploded"), "{err}");
    }

    #[test]
    fn run_pool_drains_a_shared_queue_and_joins_cleanly() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let out = run_pool(
            3,
            |_idx| {
                while !stop.load(Ordering::Relaxed) {
                    done.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
            || "control result",
            || stop.store(true, Ordering::Relaxed),
        );
        assert_eq!(out, Ok("control result"));
        assert!(done.load(Ordering::Relaxed) > 0, "workers ran");
    }

    #[test]
    fn run_pool_survives_worker_panics_and_reports_control_panics() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = AtomicBool::new(false);
        // Every worker panics instantly; control panics too. The pool must
        // still stop, join, and report the control panic as Err — not abort.
        let err = run_pool(
            2,
            |idx| panic!("worker {idx} exploded"),
            || -> usize { panic!("control exploded") },
            || stop.store(true, Ordering::Relaxed),
        )
        .unwrap_err();
        assert!(err.0.contains("control exploded"), "{err}");
        assert!(stop.load(Ordering::Relaxed), "stop ran despite the panic");
    }

    #[test]
    fn thread_count_is_clamped_not_trusted() {
        // usize::MAX threads must not try to spawn unboundedly.
        let got = map_chunks(100, usize::MAX, |r| r.len());
        assert_eq!(got.iter().sum::<usize>(), 100);
    }
}
