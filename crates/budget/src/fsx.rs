//! Durable filesystem I/O for the whole workspace.
//!
//! Every byte PUFFER persists — checkpoint journals, metrics JSONL sinks,
//! serve job specs/results, exploration journals, bench artifacts, CLI
//! outputs — goes through this module, and `puffer lint` enforces it (the
//! `raw-io` rule bans `File::create` / `fs::write` / `fs::rename` /
//! `sync_all` in library code outside this file). Three primitives cover
//! every write pattern in the workspace:
//!
//! * [`atomic_write`] — whole-file replace with the full crash discipline:
//!   write to a temp sibling, `fsync` the data, `rename` over the target,
//!   then `fsync` the parent directory so the rename itself is durable. A
//!   reader never observes a half-written file: it sees the old bytes or
//!   the new bytes, nothing in between.
//! * [`AppendSink`] — append-only record log with one `write(2)` call per
//!   record and a configurable [`FsyncPolicy`]. A crash can lose (at most)
//!   the record being written; previously flushed records are never
//!   corrupted by a later failure.
//! * [`read_journal_tail_tolerant`] — the single torn-final-record reader
//!   shared by every journal consumer. A record left incomplete by a crash
//!   is dropped (and reported via [`Journal::dropped_torn_tail`]); anything
//!   before it is returned verbatim.
//!
//! Together they guarantee the end-state invariant the chaos harness
//! asserts: after any crash, a reader finds either a complete artifact, a
//! resumable journal prefix, or nothing — never garbage.
//!
//! # Fault injection
//!
//! With the `chaos` cargo feature, the [`fault`] module arms one seeded
//! filesystem fault ([`FaultClass::DiskFull`], [`FaultClass::TornWrite`],
//! [`FaultClass::FsyncFail`], [`FaultClass::RenameFail`], or — on the
//! read side, via [`GuardedReader`] — [`FaultClass::ShortRead`]) that fires
//! deterministically at the N-th guarded operation of the matching kind
//! and then disarms itself. Without the feature the hook compiles to
//! nothing and every guarded call is a direct syscall.

use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

#[cfg(feature = "chaos")]
use crate::FaultClass;

// ---------------------------------------------------------------------------
// Guarded primitive operations (the fault-injection points)
// ---------------------------------------------------------------------------

/// Writes all of `bytes` through the fault hook: `DiskFull` refuses before
/// any byte lands, `TornWrite` lands half the bytes and then reports the
/// simulated crash.
fn guarded_write(file: &mut File, bytes: &[u8]) -> io::Result<()> {
    #[cfg(feature = "chaos")]
    if let Some(class) = fault::fire(fault::Op::Write) {
        return match class {
            FaultClass::TornWrite => {
                let half = bytes.len() / 2;
                file.write_all(&bytes[..half])?;
                let _ = file.flush();
                Err(io::Error::other(
                    "chaos: torn write (crash after a short write)",
                ))
            }
            _ => Err(io::Error::other("chaos: disk full (ENOSPC) during write")),
        };
    }
    file.write_all(bytes)
}

/// `fsync(2)` through the fault hook (`FsyncFail`).
fn guarded_fsync(file: &File) -> io::Result<()> {
    #[cfg(feature = "chaos")]
    if fault::fire(fault::Op::Fsync).is_some() {
        return Err(io::Error::other("chaos: fsync failed"));
    }
    file.sync_all()
}

/// `rename(2)` through the fault hook (`RenameFail`, and `DiskFull` at the
/// commit point).
fn guarded_rename(from: &Path, to: &Path) -> io::Result<()> {
    #[cfg(feature = "chaos")]
    if let Some(class) = fault::fire(fault::Op::Rename) {
        // Leave the temp file behind, exactly like a real failed rename.
        return match class {
            FaultClass::DiskFull => Err(io::Error::other(
                "chaos: disk full (ENOSPC) at commit rename",
            )),
            _ => Err(io::Error::other("chaos: rename failed")),
        };
    }
    std::fs::rename(from, to)
}

/// A reader whose every `read(2)` goes through the fault hook, so chaos
/// tests can make a stream end early mid-parse ([`FaultClass::ShortRead`]).
/// Without the `chaos` feature it is a zero-cost passthrough.
pub struct GuardedReader<R> {
    inner: R,
}

impl<R: io::Read> GuardedReader<R> {
    pub fn new(inner: R) -> Self {
        GuardedReader { inner }
    }
}

impl<R: io::Read> io::Read for GuardedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        #[cfg(feature = "chaos")]
        if fault::fire(fault::Op::Read).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "chaos: short read (stream truncated mid-parse)",
            ));
        }
        self.inner.read(buf)
    }
}

/// Opens `path` for buffered reading through the fault hook — the read-side
/// counterpart of the guarded write primitives.
///
/// # Errors
///
/// Propagates the `open(2)` failure.
pub fn open_read(path: &Path) -> io::Result<io::BufReader<GuardedReader<File>>> {
    Ok(io::BufReader::new(GuardedReader::new(File::open(path)?)))
}

/// `fsync`s the directory containing `path` so a just-committed rename (or
/// file creation) survives a power cut. Platforms whose directory handles
/// reject `fsync` (notably some Windows filesystems) are tolerated.
fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match File::open(parent) {
        Ok(dir) => match guarded_fsync(&dir) {
            Ok(()) => Ok(()),
            Err(e) if e.get_ref().is_some() => Err(e), // injected fault
            // A real OS refusing fsync on a directory handle is not a
            // durability bug we can fix here; the rename itself succeeded.
            Err(_) => Ok(()),
        },
        Err(_) => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// atomic_write
// ---------------------------------------------------------------------------

/// Atomically replaces `path` with `bytes`: temp sibling + `fsync` +
/// `rename` + parent-directory `fsync`.
///
/// The temp file lives next to the target (`<name>.tmp`) so the rename
/// never crosses filesystems. On failure the target is untouched — readers
/// observe either the previous contents in full or the new contents in
/// full.
///
/// # Errors
///
/// Any underlying I/O error (or injected fault); the previous file, if
/// any, is still intact.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = path.with_file_name(format!("{name}.tmp"));
    let mut file = File::create(&tmp)?;
    guarded_write(&mut file, bytes)?;
    guarded_fsync(&file)?;
    drop(file);
    guarded_rename(&tmp, path)?;
    fsync_parent_dir(path)
}

// ---------------------------------------------------------------------------
// AppendSink
// ---------------------------------------------------------------------------

/// When an [`AppendSink`] pushes its records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a completed [`AppendSink::write_record`]
    /// call survives a crash. Right for checkpoint journals and anything a
    /// resume depends on.
    EveryRecord,
    /// `fsync` only on [`AppendSink::sync`]: records are pushed to the OS
    /// (one `write(2)` per record) but durability is batched. Right for
    /// telemetry, where losing the tail is acceptable and per-record
    /// `fsync` would dominate the run.
    OnSync,
}

/// An append-only record log with the one-write-per-record discipline.
///
/// Each [`AppendSink::write_record`] issues a single `write(2)` of the
/// whole record (callers include the terminator — a trailing `\n` for line
/// records), so a crash interleaves at record granularity: the file is
/// always a sequence of complete records plus at most one torn tail, which
/// [`read_journal_tail_tolerant`] drops on recovery.
#[derive(Debug)]
pub struct AppendSink {
    file: File,
    policy: FsyncPolicy,
}

impl AppendSink {
    /// Creates (truncating) `path` and fsyncs the parent directory so the
    /// new file's existence is durable.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error creating the file.
    pub fn create(path: &Path, policy: FsyncPolicy) -> io::Result<Self> {
        let file = File::create(path)?;
        fsync_parent_dir(path)?;
        Ok(AppendSink { file, policy })
    }

    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error opening the file.
    pub fn append(path: &Path, policy: FsyncPolicy) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        fsync_parent_dir(path)?;
        Ok(AppendSink { file, policy })
    }

    /// Appends one complete record (terminator included) in a single write,
    /// then applies the fsync policy.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error (or injected fault). On error the file
    /// holds its previous records plus at most a torn tail.
    pub fn write_record(&mut self, record: &[u8]) -> io::Result<()> {
        guarded_write(&mut self.file, record)?;
        match self.policy {
            FsyncPolicy::EveryRecord => guarded_fsync(&self.file),
            FsyncPolicy::OnSync => Ok(()),
        }
    }

    /// Forces everything written so far to stable storage.
    ///
    /// # Errors
    ///
    /// The underlying `fsync` error (or injected `FsyncFail` fault).
    pub fn sync(&mut self) -> io::Result<()> {
        guarded_fsync(&self.file)
    }
}

/// One-shot durable append: opens `path`, appends `record` as a single
/// write, fsyncs, and closes. For low-rate journals (checkpoint appends)
/// where keeping a handle open buys nothing.
///
/// # Errors
///
/// Any underlying I/O error (or injected fault).
pub fn append_record(path: &Path, record: &[u8]) -> io::Result<()> {
    let mut sink = AppendSink::append(path, FsyncPolicy::EveryRecord)?;
    sink.write_record(record)
}

// ---------------------------------------------------------------------------
// Torn-tail-tolerant journal reader
// ---------------------------------------------------------------------------

/// How a journal file delimits its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordShape {
    /// One record per `\n`-terminated line. An unterminated final line is
    /// the torn tail.
    Line,
    /// Multi-line records, each closed by a line consisting of exactly the
    /// marker (e.g. `"end"`). Lines after the last marker are the torn
    /// tail. Each returned record keeps its internal newlines and the
    /// marker line.
    EndMarker(&'static str),
}

/// A journal decoded by [`read_journal_tail_tolerant`]: the complete
/// records, and whether a crash-torn tail was dropped to get them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    records: Vec<String>,
    dropped_torn_tail: bool,
}

impl Journal {
    /// Decodes `text` under the given record shape. Infallible: a torn
    /// tail is dropped and flagged, never an error — whether "no complete
    /// record" is acceptable is the caller's policy.
    pub fn from_text(text: &str, shape: RecordShape) -> Journal {
        match shape {
            RecordShape::Line => {
                let mut records = Vec::new();
                let mut torn = false;
                for chunk in text.split_inclusive('\n') {
                    match chunk.strip_suffix('\n') {
                        Some(line) => records.push(line.to_string()),
                        None => torn = true, // unterminated final line
                    }
                }
                Journal {
                    records,
                    dropped_torn_tail: torn,
                }
            }
            RecordShape::EndMarker(marker) => {
                let mut records = Vec::new();
                let mut chunk_start = 0;
                let mut cursor = 0;
                for chunk in text.split_inclusive('\n') {
                    cursor += chunk.len();
                    if chunk.strip_suffix('\n') == Some(marker) {
                        records.push(text[chunk_start..cursor].to_string());
                        chunk_start = cursor;
                    }
                }
                Journal {
                    records,
                    dropped_torn_tail: chunk_start < text.len(),
                }
            }
        }
    }

    /// The complete records, in file order.
    pub fn records(&self) -> &[String] {
        &self.records
    }

    /// The last complete record, if any.
    pub fn last(&self) -> Option<&str> {
        self.records.last().map(String::as_str)
    }

    /// The number of complete records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no complete record was found.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether an incomplete final record was dropped during decoding —
    /// the signature a crash interrupted the last append.
    pub fn dropped_torn_tail(&self) -> bool {
        self.dropped_torn_tail
    }
}

/// Reads `path` and decodes it with the workspace's single torn-tail
/// recovery rule: every complete record is returned, an incomplete final
/// record (the unsynced tail a crash can leave) is dropped and flagged.
///
/// This is the only sanctioned way to read a PUFFER journal back — the
/// checkpoint journal, the metrics JSONL validator, the exploration
/// journal, and the serve `run.jsonl` recovery all decode through it, so
/// "what survives a crash" has exactly one definition.
///
/// # Errors
///
/// The underlying read error, or `InvalidData` when the file is not UTF-8.
pub fn read_journal_tail_tolerant(path: &Path, shape: RecordShape) -> io::Result<Journal> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    Ok(Journal::from_text(&text, shape))
}

/// Returns the path of the temp sibling [`atomic_write`] uses for `path` —
/// exposed so crash-recovery scans can recognise (and ignore or sweep)
/// interrupted writes.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    path.with_file_name(format!("{name}.tmp"))
}

// ---------------------------------------------------------------------------
// Fault injection (chaos feature)
// ---------------------------------------------------------------------------

/// The deterministic filesystem fault hook. One fault is armed at a time,
/// process-wide; it fires at the N-th guarded operation of its kind and
/// disarms itself, so a seeded chaos case injects exactly one failure.
#[cfg(feature = "chaos")]
pub mod fault {
    use crate::FaultClass;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// The kind of guarded syscall a fault can intercept.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(super) enum Op {
        Write,
        Fsync,
        Rename,
        Read,
    }

    /// Armed class: 0 = disarmed, else 1 + index into `FaultClass::FS`.
    static CLASS: AtomicU32 = AtomicU32::new(0);
    /// Matching operations left to skip before firing.
    static SKIP: AtomicU32 = AtomicU32::new(0);
    /// Total faults fired since arming was first used (for assertions).
    static FIRED: AtomicU32 = AtomicU32::new(0);

    fn encode(class: FaultClass) -> Option<u32> {
        FaultClass::FS
            .iter()
            .position(|c| *c == class)
            .and_then(|i| u32::try_from(i + 1).ok())
    }

    fn decode(code: u32) -> Option<FaultClass> {
        match code {
            0 => None,
            n => usize::try_from(n - 1)
                .ok()
                .and_then(|i| FaultClass::FS.get(i).copied()),
        }
    }

    /// Arms `class` to fire after skipping `skip` guarded operations of
    /// the matching kind. Non-filesystem classes disarm instead. Returns
    /// whether a filesystem fault is now armed.
    pub fn arm(class: FaultClass, skip: usize) -> bool {
        match encode(class) {
            Some(code) => {
                SKIP.store(u32::try_from(skip).unwrap_or(u32::MAX), Ordering::SeqCst);
                CLASS.store(code, Ordering::SeqCst);
                true
            }
            None => {
                disarm();
                false
            }
        }
    }

    /// Disarms any pending fault.
    pub fn disarm() {
        CLASS.store(0, Ordering::SeqCst);
    }

    /// Whether a fault is currently armed (it has not fired yet).
    pub fn armed() -> bool {
        CLASS.load(Ordering::SeqCst) != 0
    }

    /// How many faults have fired process-wide since startup.
    pub fn fired_count() -> usize {
        usize::try_from(FIRED.load(Ordering::SeqCst)).unwrap_or(usize::MAX)
    }

    /// Which operations `class` intercepts.
    fn matches(class: FaultClass, op: Op) -> bool {
        match class {
            // ENOSPC can strike mid-data or at the commit rename.
            FaultClass::DiskFull => op == Op::Write || op == Op::Rename,
            FaultClass::TornWrite => op == Op::Write,
            FaultClass::FsyncFail => op == Op::Fsync,
            FaultClass::RenameFail => op == Op::Rename,
            FaultClass::ShortRead => op == Op::Read,
            _ => false,
        }
    }

    /// Called by the guarded primitives: decides (atomically) whether the
    /// armed fault fires at this operation. Firing disarms the hook.
    pub(super) fn fire(op: Op) -> Option<FaultClass> {
        let class = decode(CLASS.load(Ordering::SeqCst))?;
        if !matches(class, op) {
            return None;
        }
        // Count down matching operations; fire at zero. fetch_update makes
        // the skip-or-fire decision atomic under concurrent writers.
        let fired = SKIP
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err();
        if fired {
            // Only one thread observes the failed decrement per arming
            // because firing disarms before returning.
            if CLASS.swap(0, Ordering::SeqCst) == 0 {
                return None; // another thread already fired this arming
            }
            FIRED.fetch_add(1, Ordering::SeqCst);
            return Some(class);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fault hook is process-global, so under the `chaos` feature every
    /// test doing guarded I/O must serialize against the armed-fault tests.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        use std::sync::{Mutex, OnceLock};
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("puffer-fsx-tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let _g = gate();
        let dir = tmp_dir("atomic");
        let path = dir.join("a.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!tmp_sibling(&path).exists());
    }

    #[test]
    fn append_sink_accumulates_records() {
        let _g = gate();
        let dir = tmp_dir("sink");
        let path = dir.join("log.jsonl");
        let mut sink = AppendSink::create(&path, FsyncPolicy::OnSync).unwrap();
        sink.write_record(b"a\n").unwrap();
        sink.write_record(b"b\n").unwrap();
        sink.sync().unwrap();
        drop(sink);
        let mut sink = AppendSink::append(&path, FsyncPolicy::EveryRecord).unwrap();
        sink.write_record(b"c\n").unwrap();
        drop(sink);
        let j = read_journal_tail_tolerant(&path, RecordShape::Line).unwrap();
        assert_eq!(j.records(), ["a", "b", "c"]);
        assert!(!j.dropped_torn_tail());
    }

    #[test]
    fn append_record_is_one_shot() {
        let _g = gate();
        let dir = tmp_dir("oneshot");
        let path = dir.join("j.log");
        let _ = std::fs::remove_file(&path);
        append_record(&path, b"first\n").unwrap();
        append_record(&path, b"second\n").unwrap();
        let j = read_journal_tail_tolerant(&path, RecordShape::Line).unwrap();
        assert_eq!(j.records(), ["first", "second"]);
    }

    #[test]
    fn line_journal_drops_unterminated_tail() {
        let j = Journal::from_text("a\nb\ncut-off", RecordShape::Line);
        assert_eq!(j.records(), ["a", "b"]);
        assert!(j.dropped_torn_tail());
        assert_eq!(j.last(), Some("b"));
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn line_journal_on_clean_file_keeps_everything() {
        let j = Journal::from_text("a\nb\n", RecordShape::Line);
        assert_eq!(j.records(), ["a", "b"]);
        assert!(!j.dropped_torn_tail());
        let empty = Journal::from_text("", RecordShape::Line);
        assert!(empty.is_empty());
        assert!(!empty.dropped_torn_tail());
    }

    #[test]
    fn end_marker_journal_splits_on_marker_lines() {
        let text = "header 1\nx 3\nend\nheader 2\ny 4\nend\n";
        let j = Journal::from_text(text, RecordShape::EndMarker("end"));
        assert_eq!(j.len(), 2);
        assert_eq!(j.records()[0], "header 1\nx 3\nend\n");
        assert_eq!(j.last(), Some("header 2\ny 4\nend\n"));
        assert!(!j.dropped_torn_tail());
    }

    #[test]
    fn end_marker_journal_drops_torn_record() {
        let text = "header 1\nend\nheader 2\ntruncat";
        let j = Journal::from_text(text, RecordShape::EndMarker("end"));
        assert_eq!(j.records(), ["header 1\nend\n"]);
        assert!(j.dropped_torn_tail());
        // A marker line without its newline is itself torn.
        let torn_marker = Journal::from_text("a\nend", RecordShape::EndMarker("end"));
        assert!(torn_marker.is_empty());
        assert!(torn_marker.dropped_torn_tail());
    }

    #[test]
    fn reader_round_trips_through_a_file() {
        let _g = gate();
        let dir = tmp_dir("reader");
        let path = dir.join("t.log");
        std::fs::write(&path, "x\ny\nto").unwrap();
        let j = read_journal_tail_tolerant(&path, RecordShape::Line).unwrap();
        assert_eq!(j.records(), ["x", "y"]);
        assert!(j.dropped_torn_tail());
        assert!(read_journal_tail_tolerant(dir.join("absent.log").as_path(), RecordShape::Line)
            .is_err());
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::super::*;
        use crate::FaultClass;
        fn tmp_dir(name: &str) -> PathBuf {
            let dir = std::env::temp_dir().join("puffer-fsx-chaos").join(name);
            std::fs::create_dir_all(&dir).unwrap();
            dir
        }

        #[test]
        fn disk_full_mid_write_leaves_previous_file_intact() {
            let _g = super::gate();
            let dir = tmp_dir("enospc");
            let path = dir.join("a.txt");
            atomic_write(&path, b"stable").unwrap();
            assert!(fault::arm(FaultClass::DiskFull, 0));
            let err = atomic_write(&path, b"replacement").unwrap_err();
            assert!(err.to_string().contains("disk full"), "{err}");
            assert!(!fault::armed());
            assert_eq!(std::fs::read(&path).unwrap(), b"stable");
            fault::disarm();
        }

        #[test]
        fn torn_write_lands_half_the_bytes_then_fails() {
            let _g = super::gate();
            let dir = tmp_dir("torn");
            let path = dir.join("log.jsonl");
            let mut sink = AppendSink::create(&path, FsyncPolicy::OnSync).unwrap();
            sink.write_record(b"whole-record\n").unwrap();
            assert!(fault::arm(FaultClass::TornWrite, 0));
            let err = sink.write_record(b"doomed-record\n").unwrap_err();
            assert!(err.to_string().contains("torn write"), "{err}");
            drop(sink);
            let j = read_journal_tail_tolerant(&path, RecordShape::Line).unwrap();
            assert_eq!(j.records(), ["whole-record"]);
            assert!(j.dropped_torn_tail());
            fault::disarm();
        }

        #[test]
        fn rename_fail_leaves_target_untouched_and_tmp_behind() {
            let _g = super::gate();
            let dir = tmp_dir("rename");
            let path = dir.join("a.txt");
            atomic_write(&path, b"stable").unwrap();
            assert!(fault::arm(FaultClass::RenameFail, 0));
            let err = atomic_write(&path, b"replacement").unwrap_err();
            assert!(err.to_string().contains("rename failed"), "{err}");
            assert_eq!(std::fs::read(&path).unwrap(), b"stable");
            assert_eq!(std::fs::read(tmp_sibling(&path)).unwrap(), b"replacement");
            fault::disarm();
        }

        #[test]
        fn fsync_fail_surfaces_on_sync() {
            let _g = super::gate();
            let dir = tmp_dir("fsync");
            let path = dir.join("log.jsonl");
            let mut sink = AppendSink::create(&path, FsyncPolicy::OnSync).unwrap();
            sink.write_record(b"r\n").unwrap();
            assert!(fault::arm(FaultClass::FsyncFail, 0));
            let err = sink.sync().unwrap_err();
            assert!(err.to_string().contains("fsync failed"), "{err}");
            fault::disarm();
        }

        #[test]
        fn skip_counts_matching_operations_only() {
            let _g = super::gate();
            let dir = tmp_dir("skip");
            let path = dir.join("log.jsonl");
            let mut sink = AppendSink::create(&path, FsyncPolicy::EveryRecord).unwrap();
            // Skip 2 writes; the interleaved fsyncs must not consume it.
            assert!(fault::arm(FaultClass::TornWrite, 2));
            sink.write_record(b"a\n").unwrap();
            sink.write_record(b"b\n").unwrap();
            assert!(fault::armed());
            assert!(sink.write_record(b"c\n").is_err());
            assert!(!fault::armed());
            drop(sink);
            let j = read_journal_tail_tolerant(&path, RecordShape::Line).unwrap();
            assert_eq!(j.records(), ["a", "b"]);
            fault::disarm();
        }

        #[test]
        fn non_fs_classes_do_not_arm() {
            let _g = super::gate();
            assert!(!fault::arm(FaultClass::WorkerPanic, 0));
            assert!(!fault::armed());
        }

        #[test]
        fn short_read_fires_through_the_guarded_reader() {
            use std::io::Read as _;
            let _g = super::gate();
            let dir = tmp_dir("short-read");
            let path = dir.join("input.txt");
            atomic_write(&path, b"line one\nline two\n").unwrap();

            // Unfaulted: the guarded reader is a passthrough.
            let mut text = String::new();
            open_read(&path).unwrap().read_to_string(&mut text).unwrap();
            assert_eq!(text, "line one\nline two\n");

            // Armed with skip 0: the first read dies, writes are unaffected.
            assert!(fault::arm(FaultClass::ShortRead, 0));
            let mut r = open_read(&path).unwrap();
            let mut buf = String::new();
            let err = r.read_to_string(&mut buf).unwrap_err();
            assert!(err.to_string().contains("short read"), "{err}");
            assert!(!fault::armed());
            atomic_write(&path, b"still writable").unwrap();
            fault::disarm();
        }
    }
}
