//! Process peak-memory introspection for the scale-regression gates.
//!
//! The million-cell smoke tests assert that streaming ingestion and the
//! size-aware flow stay under a documented RSS ceiling. The measurement is
//! the kernel's own high-water mark (`VmHWM` in `/proc/self/status`), so
//! it covers every allocation the process made — arenas, thread stacks,
//! mmaps — not just what an allocator hook would see.

use std::io::Read;

/// Peak resident-set size of the current process in bytes (`VmHWM`), or
/// `None` where `/proc/self/status` is unavailable (non-Linux platforms)
/// or does not parse. Callers gate on `Some` so the scale tests skip
/// gracefully rather than fail on such hosts.
pub fn peak_rss_bytes() -> Option<u64> {
    let mut text = String::new();
    std::fs::File::open("/proc/self/status")
        .ok()?
        .read_to_string(&mut text)
        .ok()?;
    parse_vm_hwm(&text)
}

/// Extracts `VmHWM` (reported in kB) from `/proc/self/status` text.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_hwm_parses_from_status_text() {
        let status = "Name:\tpuffer\nVmPeak:\t  201844 kB\nVmHWM:\t   98304 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(98304 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tpuffer\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(rss) = peak_rss_bytes() {
            // Any running test binary has at least a megabyte resident.
            assert!(rss > 1 << 20, "implausible peak RSS {rss}");
        }
    }
}
