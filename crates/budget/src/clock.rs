//! The workspace's wall-clock facade.
//!
//! `puffer lint`'s `wallclock` rule bans raw `Instant::now()` /
//! `SystemTime::now()` from non-test library code outside `puffer-trace`
//! and `puffer-budget`: ad-hoc clock reads are how nondeterminism leaks
//! into code that is supposed to be bit-identical run-to-run. Code that
//! legitimately measures durations (stage timing, idle detection) or
//! bounds waits (backoff, condvar timeouts) goes through these two types
//! instead, which keeps every clock read greppable and auditable.
//!
//! Neither type lets a caller observe an absolute timestamp: a
//! [`Stopwatch`] yields only durations since its own start and a
//! [`Deadline`] only the time left until its own expiry, so neither can be
//! (mis)used to key results off wall-clock time.

use std::time::{Duration, Instant};

/// Measures elapsed time from its creation: the stage-timing primitive.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the watch now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since [`Stopwatch::start`], in seconds — the unit every trace
    /// record and report field uses.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A fixed point in the future: the bounded-wait primitive for backoff
/// sleeps and condvar timeouts.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// The deadline `d` from now. Saturates at the far future on overflow.
    #[must_use]
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now()
                .checked_add(d)
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400 * 365)),
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left, saturating at zero once expired — safe to hand directly
    /// to `Condvar::wait_timeout` or `thread::sleep`.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed() >= Duration::from_millis(5));
        assert!(sw.elapsed_secs() > 0.0);
    }

    #[test]
    fn deadline_expires_and_remaining_saturates() {
        let d = Deadline::after(Duration::from_millis(5));
        assert!(d.remaining() <= Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn zero_deadline_is_immediately_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
    }
}
