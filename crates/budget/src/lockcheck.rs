//! Lock-order discipline: declared lock classes, an ordered-acquisition
//! wrapper, and a `lockcheck`-feature runtime sanitizer.
//!
//! Every `Mutex` in non-test library code belongs to a [`LockClass`]
//! declared in [`classes`], and is acquired through [`lock_ordered`] (or
//! re-wrapped with [`Locked::from_guard`] after a condvar wait). The
//! classes carry a global **rank**: a thread may only acquire a class
//! whose rank is strictly greater than every class it already holds, so
//! the "acquired while held" relation is a sub-relation of `<` on ranks —
//! acyclic by construction, which rules out lock-order-inversion
//! deadlocks across the serve engine, the admission queue, the RSMT
//! caches, and the trace registry.
//!
//! Enforcement is layered:
//!
//! * **statically** — `puffer lint` extracts every acquisition site,
//!   builds the lock-order graph over a per-crate call graph, and fails on
//!   a cycle or on an edge that contradicts the declared ranks (it parses
//!   the rank table straight out of this file, so there is exactly one
//!   copy of the order);
//! * **at runtime** — with the `lockcheck` cargo feature, a thread-local
//!   held-lock stack asserts the rank discipline on every acquisition,
//!   catching orders the static pass cannot see (callbacks, trait objects,
//!   cross-crate call chains). Without the feature every check compiles
//!   to nothing and [`Token`] is a zero-sized no-op.
//!
//! The sanitizer *asserts* (aborting the offending test or chaos run) —
//! a lock-order inversion is a latent deadlock, never a recoverable
//! condition.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A named lock class with its global acquisition rank. Instances are the
/// `static`s in [`classes`]; call sites never construct ad-hoc classes.
#[derive(Debug)]
pub struct LockClass {
    /// Stable dotted name, e.g. `"serve.jobs"` — what the static analyzer
    /// and the sanitizer's failure message report.
    pub name: &'static str,
    /// Global acquisition rank: higher ranks must be acquired strictly
    /// after (inside) lower ranks, never the other way around.
    pub rank: u16,
}

impl LockClass {
    /// Declares a class; used only by [`classes`].
    #[must_use]
    pub const fn new(name: &'static str, rank: u16) -> Self {
        LockClass { name, rank }
    }
}

/// The declared global lock order, lowest (outermost) rank first.
///
/// `puffer lint` parses this module's source to build its rank table, so
/// the declaration below is the single source of truth for both the
/// static lock-order analysis and the runtime sanitizer. Keep one class
/// per `pub static` line, in rank order.
pub mod classes {
    use super::LockClass;

    /// The serve admission queue's state (`BoundedQueue::state`).
    pub static SERVE_QUEUE: LockClass = LockClass::new("serve.queue", 10);
    /// The serve engine's job table (`Shared::jobs`).
    pub static SERVE_JOBS: LockClass = LockClass::new("serve.jobs", 20);
    /// The per-chunk RSMT decomposition caches in `puffer-congest`.
    pub static CONGEST_RSMT: LockClass = LockClass::new("congest.rsmt", 30);
    /// The trace span registry.
    pub static TRACE_SPANS: LockClass = LockClass::new("trace.spans", 40);
    /// The trace counter table.
    pub static TRACE_COUNTERS: LockClass = LockClass::new("trace.counters", 41);
    /// The trace gauge table.
    pub static TRACE_GAUGES: LockClass = LockClass::new("trace.gauges", 42);
    /// The trace heartbeat table.
    pub static TRACE_HEARTBEATS: LockClass = LockClass::new("trace.heartbeats", 43);
    /// The trace JSONL sink.
    pub static TRACE_SINK: LockClass = LockClass::new("trace.sink", 44);
    /// The trace first-write-error slot.
    pub static TRACE_ERROR: LockClass = LockClass::new("trace.error", 45);
}

#[cfg(feature = "lockcheck")]
mod held {
    use std::cell::RefCell;

    thread_local! {
        /// Classes this thread currently holds, in acquisition order. The
        /// rank discipline keeps it strictly increasing, so checking the
        /// top suffices.
        pub(super) static HELD: RefCell<Vec<(&'static str, u16)>> =
            const { RefCell::new(Vec::new()) };
    }
}

/// RAII record of one acquisition on this thread's held-lock stack.
///
/// With the `lockcheck` feature, creating a token asserts the rank
/// discipline and pushes the class; dropping it pops. Without the feature
/// it is zero-sized and free.
#[derive(Debug)]
pub struct Token {
    #[cfg(feature = "lockcheck")]
    class: &'static LockClass,
}

impl Token {
    /// Records (and, under `lockcheck`, validates) an acquisition of
    /// `class` on the current thread.
    ///
    /// # Panics
    ///
    /// With the `lockcheck` feature, when the thread already holds a class
    /// of equal or higher rank — a lock-order inversion.
    #[must_use]
    pub fn acquire(class: &'static LockClass) -> Token {
        #[cfg(feature = "lockcheck")]
        held::HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&(top_name, top_rank)) = held.last() {
                assert!(
                    top_rank < class.rank,
                    "lock-order violation: acquiring '{}' (rank {}) while holding '{}' \
                     (rank {}) — acquisitions must follow the declared order in \
                     puffer_budget::lockcheck::classes",
                    class.name,
                    class.rank,
                    top_name,
                    top_rank,
                );
            }
            held.push((class.name, class.rank));
        });
        #[cfg(not(feature = "lockcheck"))]
        let _ = class;
        Token {
            #[cfg(feature = "lockcheck")]
            class,
        }
    }
}

#[cfg(feature = "lockcheck")]
impl Drop for Token {
    fn drop(&mut self) {
        held::HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Guards usually drop LIFO, but paired destructuring can
            // release out of order; remove the last record of this class.
            if let Some(pos) = held.iter().rposition(|&(name, _)| name == self.class.name) {
                held.remove(pos);
            }
        });
    }
}

/// A `MutexGuard` tagged with its lock class. Dereferences to the data;
/// releases the class record when dropped.
#[derive(Debug)]
pub struct Locked<'a, T> {
    guard: MutexGuard<'a, T>,
    token: Token,
}

impl<'a, T> Locked<'a, T> {
    /// Splits off the raw guard (e.g. to hand to `Condvar::wait_timeout`,
    /// which releases the mutex); the class record is popped, mirroring
    /// the release. Re-wrap the reacquired guard with
    /// [`Locked::from_guard`].
    pub fn into_guard(self) -> MutexGuard<'a, T> {
        // `token` drops here, popping the class record.
        let Locked { guard, token: _token } = self;
        guard
    }

    /// Tags a raw guard (re)acquired out-of-band — the return path from a
    /// condvar wait. Performs the same rank check as [`lock_ordered`].
    #[must_use]
    pub fn from_guard(guard: MutexGuard<'a, T>, class: &'static LockClass) -> Locked<'a, T> {
        Locked {
            guard,
            token: Token::acquire(class),
        }
    }
}

impl<T> Deref for Locked<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for Locked<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Acquires `m` under `class`: the one sanctioned way to lock a classed
/// mutex. Recovers poisoned guards — every classed mutex in the workspace
/// guards plain data that a panicking holder cannot leave half-moved, and
/// telemetry/serving must keep working after a panic-isolated worker dies.
#[must_use]
pub fn lock_ordered<'a, T>(m: &'a Mutex<T>, class: &'static LockClass) -> Locked<'a, T> {
    let token = Token::acquire(class);
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    Locked { guard, token }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_ordered_derefs_to_the_data() {
        let m = Mutex::new(7u32);
        {
            let mut g = lock_ordered(&m, &classes::SERVE_JOBS);
            *g += 1;
        }
        assert_eq!(*lock_ordered(&m, &classes::SERVE_JOBS), 8);
    }

    #[test]
    fn in_order_nesting_is_accepted() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let _qa = lock_ordered(&a, &classes::SERVE_QUEUE);
        let _qb = lock_ordered(&b, &classes::SERVE_JOBS);
        // Dropping in reverse order unwinds the held stack cleanly.
    }

    #[test]
    fn into_guard_releases_the_class_record() {
        let m = Mutex::new(());
        let g = lock_ordered(&m, &classes::TRACE_SINK);
        let raw = g.into_guard();
        // The class record is popped: acquiring a *lower* rank now is fine
        // even under the sanitizer, exactly as after a condvar release.
        let n = Mutex::new(());
        let _low = lock_ordered(&n, &classes::SERVE_QUEUE);
        drop(raw);
    }

    #[test]
    fn classes_are_strictly_ranked() {
        let ranks = [
            &classes::SERVE_QUEUE,
            &classes::SERVE_JOBS,
            &classes::CONGEST_RSMT,
            &classes::TRACE_SPANS,
            &classes::TRACE_COUNTERS,
            &classes::TRACE_GAUGES,
            &classes::TRACE_HEARTBEATS,
            &classes::TRACE_SINK,
            &classes::TRACE_ERROR,
        ];
        for pair in ranks.windows(2) {
            assert!(pair[0].rank < pair[1].rank, "{} vs {}", pair[0].name, pair[1].name);
        }
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn inverted_acquisition_trips_the_sanitizer() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        // trace.sink (rank 44) then serve.jobs (rank 20): inverted.
        let _hi = lock_ordered(&a, &classes::TRACE_SINK);
        let _lo = lock_ordered(&b, &classes::SERVE_JOBS);
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_class_reentry_trips_the_sanitizer() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let _one = lock_ordered(&a, &classes::SERVE_JOBS);
        let _two = lock_ordered(&b, &classes::SERVE_JOBS);
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn release_then_reacquire_lower_is_clean() {
        let hi = Mutex::new(());
        let lo = Mutex::new(());
        drop(lock_ordered(&hi, &classes::TRACE_ERROR));
        let _q = lock_ordered(&lo, &classes::SERVE_QUEUE);
    }
}
