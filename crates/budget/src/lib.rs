//! Cooperative execution budgets for the PUFFER flow.
//!
//! Every long-running stage of the flow (Nesterov iterations, congestion
//! rounds, SMBO trials, rip-up routing rounds, detailed-placement passes)
//! checks a [`Budget`] at its loop boundary. An expired deadline or an
//! external [`CancelToken`] then produces a clean best-so-far result (or a
//! typed `Cancelled` error where no partial result exists) instead of a
//! `kill -9`. On top of the raw budget sit three cooperating mechanisms:
//!
//! * [`DegradationLadder`] — a declared order in which the flow steps down
//!   fidelity as the deadline nears (coarsen congestion estimation, freeze
//!   padding updates, cap remaining SMBO trials, early-exit global
//!   placement at the current overflow);
//! * [`StallWatchdog`] — detects a stage whose progress counter stops
//!   advancing within a configurable window, so the flow can
//!   checkpoint-then-degrade (or abort) instead of spinning;
//! * [`FaultClass`]/[`ChaosPlan`] — the deterministic fault-injection
//!   vocabulary consumed by the `chaos` feature of the core flow and the
//!   `puffer chaos` harness.
//!
//! The crate sits at layer 0 of the workspace (no dependencies), so every
//! stage crate can consume it without violating the downward-only layering
//! that `puffer lint` enforces. It also hosts the worker-thread sizing
//! helpers shared by the router and the congestion estimator, and the one
//! sanctioned `unsafe` block in the workspace: the [`signal`] module's
//! binding to `signal(2)` behind [`CancelToken::cancel_on_signal`].

// `deny` rather than `forbid`: the `signal` module below carries the single
// waived `#[allow(unsafe_code)]` in the workspace (see lint-allow.toml).
#![deny(unsafe_code)]

pub mod clock;
pub mod fsx;
pub mod lockcheck;
pub mod mem;

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Process signals
// ---------------------------------------------------------------------------

/// Process-signal integration for [`CancelToken::cancel_on_signal`].
///
/// The workspace is otherwise `forbid(unsafe_code)`; this module is the one
/// sanctioned exception (waived in `lint-allow.toml`). It binds the C
/// `signal(2)` entry point directly — the symbol links through std's libc
/// dependency, so no crate dependency is added — because an async-signal-safe
/// handler may do nothing more than set a flag, which is exactly what a
/// relaxed atomic store is.
#[allow(unsafe_code)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the handler, never cleared: signal delivery is sticky for the
    /// life of the process, so tokens created after a SIGTERM are born
    /// cancelled — exactly what a drain-then-exit path wants.
    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    /// POSIX signal numbers (Linux). Declared here rather than pulled from a
    /// libc crate the workspace does not depend on.
    pub const SIGINT: i32 = 2;
    /// See [`SIGINT`].
    pub const SIGTERM: i32 = 15;

    /// C `sighandler_t`: a handler receives the delivered signal number.
    type Handler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`. The returned previous handler is opaque here;
        /// it is never restored.
        fn signal(signum: i32, handler: Handler) -> usize;
        /// POSIX `raise(3)`; used by the tests to deliver a real signal.
        #[cfg(test)]
        fn raise(signum: i32) -> i32;
    }

    /// The installed handler: async-signal-safe by construction — a single
    /// relaxed atomic store, no allocation, no locks, no formatting.
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    /// Idempotent: re-installing the same handler is harmless.
    pub fn install() {
        // SAFETY: `on_signal` matches the C handler ABI and performs only an
        // atomic store, which is async-signal-safe; `signal` itself is a
        // plain FFI call with no pointer arguments.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// Whether SIGINT or SIGTERM has been delivered since [`install`].
    pub fn signalled() -> bool {
        SIGNALLED.load(Ordering::Relaxed)
    }

    /// Test hook: delivers `signum` to the current process for real.
    #[cfg(test)]
    pub fn deliver(signum: i32) {
        // SAFETY: `raise` is a plain FFI call with no pointer arguments.
        unsafe {
            raise(signum);
        }
    }
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

/// Why a budget check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cancelled {
    /// The wall-clock deadline expired.
    Deadline,
    /// The [`CancelToken`] was triggered externally.
    Token,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cancelled::Deadline => f.write_str("deadline expired"),
            Cancelled::Token => f.write_str("cancelled by token"),
        }
    }
}

impl std::error::Error for Cancelled {}

/// A shareable cancellation flag. Cloning shares the flag: cancelling any
/// clone cancels them all, so one token can fan out across worker threads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    on_signal: bool,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that also trips once the process receives SIGINT or SIGTERM,
    /// turning either signal into the same cooperative cancellation an
    /// explicit [`CancelToken::cancel`] produces (checkpoint, legalize the
    /// best-so-far state, exit cleanly — never die mid-write).
    ///
    /// Installs a process-wide flag-setting handler (idempotent). Signal
    /// delivery is sticky for the life of the process, so signal-aware
    /// tokens created afterwards are born cancelled.
    pub fn cancel_on_signal() -> Self {
        signal::install();
        CancelToken {
            flag: Arc::default(),
            on_signal: true,
        }
    }

    /// Triggers the token; every [`Budget`] carrying it fails its next
    /// check. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been triggered (explicitly, or — for tokens
    /// from [`CancelToken::cancel_on_signal`] — by a process signal).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.signal_received()
    }

    /// Whether a process signal (as opposed to an explicit `cancel`)
    /// tripped this token. Always `false` for signal-unaware tokens; lets
    /// callers word their "stopping early" message accurately.
    pub fn signal_received(&self) -> bool {
        self.on_signal && signal::signalled()
    }
}

/// A cooperative execution budget: an optional wall-clock deadline plus a
/// shared [`CancelToken`]. Checking is cheap (one `Instant::now()` and one
/// relaxed atomic load), so loops may check every iteration.
///
/// Cloning shares the token and keeps the same absolute deadline, so a
/// budget handed down to a sub-stage counts against the same wall clock.
#[derive(Debug, Clone)]
pub struct Budget {
    started: Instant,
    deadline: Option<Instant>,
    total: Option<Duration>,
    token: CancelToken,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unbounded()
    }
}

impl Budget {
    /// A budget that never expires (checks always succeed unless the token
    /// is cancelled).
    pub fn unbounded() -> Self {
        Budget {
            started: Instant::now(),
            deadline: None,
            total: None,
            token: CancelToken::new(),
        }
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        let started = Instant::now();
        Budget {
            started,
            deadline: Some(started + limit),
            total: Some(limit),
            token: CancelToken::new(),
        }
    }

    /// Replaces the cancel token (e.g. to share one token across several
    /// budgets), returning `self` for chaining.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = token;
        self
    }

    /// The shared cancellation token.
    pub fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether a deadline is attached at all.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some()
    }

    /// The cooperative cancellation point: `Err` once the deadline expired
    /// or the token fired.
    ///
    /// # Errors
    ///
    /// [`Cancelled::Token`] when the token fired (checked first, so an
    /// explicit cancel wins over a simultaneous deadline),
    /// [`Cancelled::Deadline`] when the wall clock passed the deadline.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.token.is_cancelled() {
            return Err(Cancelled::Token);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(Cancelled::Deadline),
            _ => Ok(()),
        }
    }

    /// `check()` as a boolean, for loop conditions.
    pub fn is_exhausted(&self) -> bool {
        self.check().is_err()
    }

    /// Remaining wall-clock time, `None` when unbounded. Zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Fraction of the budget still available in `[0, 1]`; `1.0` for an
    /// unbounded budget. This is what the [`DegradationLadder`] thresholds
    /// are compared against.
    pub fn fraction_remaining(&self) -> f64 {
        match (self.remaining(), self.total) {
            (Some(rem), Some(total)) if total > Duration::ZERO => {
                (rem.as_secs_f64() / total.as_secs_f64()).clamp(0.0, 1.0)
            }
            (Some(_), _) => 0.0,
            (None, _) => 1.0,
        }
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

/// One fidelity step the flow can give up as the deadline nears, in the
/// paper-flow vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeStep {
    /// Coarsen the congestion-estimation grid (cheaper, blurrier maps).
    CoarseCongestion,
    /// Stop updating the cell padding (keep the accumulated padding).
    FreezePadding,
    /// Cap the remaining SMBO exploration trials.
    CapTrials,
    /// Exit global placement at the current overflow and legalize.
    EarlyExitGp,
}

impl DegradeStep {
    /// Every step, in the default ladder order.
    pub const ALL: [DegradeStep; 4] = [
        DegradeStep::CoarseCongestion,
        DegradeStep::FreezePadding,
        DegradeStep::CapTrials,
        DegradeStep::EarlyExitGp,
    ];

    /// The CLI / journal / trace spelling of the step.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeStep::CoarseCongestion => "coarse-congestion",
            DegradeStep::FreezePadding => "freeze-padding",
            DegradeStep::CapTrials => "cap-trials",
            DegradeStep::EarlyExitGp => "early-exit-gp",
        }
    }

    /// The default fraction-remaining threshold at which the step engages.
    /// Ordered: cheaper fidelity losses engage earlier.
    pub fn default_threshold(self) -> f64 {
        match self {
            DegradeStep::CoarseCongestion => 0.50,
            DegradeStep::FreezePadding => 0.35,
            DegradeStep::CapTrials => 0.20,
            DegradeStep::EarlyExitGp => 0.08,
        }
    }
}

impl fmt::Display for DegradeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DegradeStep {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DegradeStep::ALL
            .into_iter()
            .find(|step| step.as_str() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = DegradeStep::ALL.iter().map(|s| s.as_str()).collect();
                format!("unknown degradation step '{s}' (known: {})", known.join(", "))
            })
    }
}

/// A declared, ordered fidelity-reduction schedule: each step engages once
/// the [`Budget::fraction_remaining`] drops to its threshold. Thresholds
/// must be non-increasing so the declared order is also the engagement
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationLadder {
    steps: Vec<(DegradeStep, f64)>,
}

impl Default for DegradationLadder {
    fn default() -> Self {
        DegradationLadder {
            steps: DegradeStep::ALL
                .into_iter()
                .map(|s| (s, s.default_threshold()))
                .collect(),
        }
    }
}

impl DegradationLadder {
    /// An empty ladder: never degrade, only hard-cancel at the deadline.
    pub fn none() -> Self {
        DegradationLadder { steps: Vec::new() }
    }

    /// The declared `(step, threshold)` schedule.
    pub fn steps(&self) -> &[(DegradeStep, f64)] {
        &self.steps
    }

    /// Parses a CLI ladder spec: a comma-separated list of step names, each
    /// optionally carrying an explicit threshold as `name@fraction`
    /// (e.g. `coarse-congestion,freeze-padding@0.3,early-exit-gp`).
    /// `default` yields [`DegradationLadder::default`], `none` an empty
    /// ladder.
    ///
    /// # Errors
    ///
    /// A message naming the unknown step, a malformed/out-of-range
    /// threshold, or an order whose thresholds increase (which would engage
    /// steps out of the declared order).
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec.trim() {
            "default" | "" => return Ok(DegradationLadder::default()),
            "none" => return Ok(DegradationLadder::none()),
            _ => {}
        }
        let mut steps = Vec::new();
        let mut prev = f64::INFINITY;
        for part in spec.split(',') {
            let part = part.trim();
            let (name, threshold) = match part.split_once('@') {
                Some((name, frac)) => {
                    let t: f64 = frac
                        .parse()
                        .map_err(|_| format!("bad threshold '{frac}' in '{part}'"))?;
                    if !(0.0..=1.0).contains(&t) {
                        return Err(format!("threshold {t} in '{part}' must be in [0, 1]"));
                    }
                    (name, Some(t))
                }
                None => (part, None),
            };
            let step: DegradeStep = name.parse()?;
            let threshold = threshold.unwrap_or_else(|| step.default_threshold().min(prev));
            if threshold > prev {
                return Err(format!(
                    "ladder thresholds must be non-increasing: {step} engages at \
                     {threshold} after a step at {prev}"
                ));
            }
            if steps.iter().any(|(s, _)| *s == step) {
                return Err(format!("duplicate ladder step '{step}'"));
            }
            prev = threshold;
            steps.push((step, threshold));
        }
        Ok(DegradationLadder { steps })
    }
}

/// Engagement state of a [`DegradationLadder`] over one run.
#[derive(Debug, Clone)]
pub struct LadderState {
    ladder: DegradationLadder,
    engaged: usize,
}

impl LadderState {
    /// Fresh state: nothing engaged yet.
    pub fn new(ladder: DegradationLadder) -> Self {
        LadderState { ladder, engaged: 0 }
    }

    /// Engages every step whose threshold the budget has crossed and
    /// returns the newly engaged ones, in ladder order. Steps engage at
    /// most once; an unbounded budget never engages anything.
    pub fn poll(&mut self, budget: &Budget) -> Vec<DegradeStep> {
        if !budget.is_bounded() {
            return Vec::new();
        }
        let frac = budget.fraction_remaining();
        let mut fresh = Vec::new();
        while let Some(&(step, threshold)) = self.ladder.steps.get(self.engaged) {
            if frac > threshold {
                break;
            }
            self.engaged += 1;
            fresh.push(step);
        }
        fresh
    }

    /// Whether `step` has engaged.
    pub fn is_engaged(&self, step: DegradeStep) -> bool {
        self.ladder.steps[..self.engaged]
            .iter()
            .any(|(s, _)| *s == step)
    }

    /// Every engaged step so far, in engagement order.
    pub fn engaged(&self) -> Vec<DegradeStep> {
        self.ladder.steps[..self.engaged]
            .iter()
            .map(|(s, _)| *s)
            .collect()
    }

    /// Force-engages a step out of schedule (e.g. the watchdog demoting a
    /// stalled stage straight to [`DegradeStep::EarlyExitGp`]). Returns
    /// `true` when the step was in the ladder and not yet engaged.
    pub fn force(&mut self, step: DegradeStep) -> bool {
        let Some(pos) = self.ladder.steps.iter().position(|(s, _)| *s == step) else {
            return false;
        };
        if pos < self.engaged {
            return false;
        }
        // Engage everything up to and including `step`, preserving order.
        self.ladder.steps.swap(self.engaged, pos);
        self.engaged += 1;
        true
    }
}

// ---------------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------------

/// What the flow does when the watchdog trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallAction {
    /// Checkpoint, then degrade: finish from the best state so far.
    #[default]
    Degrade,
    /// Checkpoint, then abort with a stall error.
    Abort,
}

/// A cooperative stall detector: the owning loop feeds it a monotone
/// progress counter at every boundary; if the counter stops advancing for
/// longer than the window, [`StallWatchdog::observe`] reports the stall.
///
/// Being cooperative (the workspace bans free-running monitor threads), it
/// can only fire at a boundary the loop actually reaches — it catches
/// non-advancing loops (a frozen stage spinning without progress, an
/// injected slow-stage delay), not a single blocking call that never
/// returns.
#[derive(Debug, Clone)]
pub struct StallWatchdog {
    window: Duration,
    action: StallAction,
    last_progress: Option<u64>,
    last_advance: Instant,
    tripped: bool,
}

impl StallWatchdog {
    /// A watchdog tripping after `window` without progress.
    pub fn new(window: Duration) -> Self {
        StallWatchdog {
            window,
            action: StallAction::default(),
            last_progress: None,
            last_advance: Instant::now(),
            tripped: false,
        }
    }

    /// Sets the on-trip action, returning `self` for chaining.
    pub fn with_action(mut self, action: StallAction) -> Self {
        self.action = action;
        self
    }

    /// The configured window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// The configured on-trip action.
    pub fn action(&self) -> StallAction {
        self.action
    }

    /// Feeds the current progress counter. Returns `Some(stalled_for)` the
    /// first time the counter has not advanced for longer than the window;
    /// afterwards the watchdog stays tripped and reports `None` (the owner
    /// is expected to act on the first report).
    pub fn observe(&mut self, progress: u64) -> Option<Duration> {
        if self.tripped {
            return None;
        }
        let now = Instant::now();
        if self.last_progress != Some(progress) {
            self.last_progress = Some(progress);
            self.last_advance = now;
            return None;
        }
        let stalled = now.saturating_duration_since(self.last_advance);
        if stalled >= self.window {
            self.tripped = true;
            return Some(stalled);
        }
        None
    }

    /// Whether the watchdog has tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }
}

// ---------------------------------------------------------------------------
// Deterministic chaos vocabulary
// ---------------------------------------------------------------------------

/// The fault classes the chaos harness injects at instrumented points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// An SMBO objective (worker) panics mid-trial.
    WorkerPanic,
    /// A burst of NaN coordinates poisons the placer trajectory.
    NanBurst,
    /// A stage stops advancing for a stretch of wall-clock time.
    SlowStage,
    /// A checkpoint-journal write fails part-way through.
    JournalWrite,
    /// The disk reports ENOSPC part-way through a durable write (either
    /// mid-data or at the commit rename).
    DiskFull,
    /// A write lands only half its bytes and then the process "crashes"
    /// (the [`fsx`] hook reports an I/O error after a short write).
    TornWrite,
    /// `fsync` fails: the data may be in the page cache but durability is
    /// not guaranteed.
    FsyncFail,
    /// The commit `rename` of an atomic replace fails.
    RenameFail,
    /// A guarded read ends early mid-parse (the stream dies before the
    /// file does), as if the file were truncated under the reader.
    ShortRead,
}

impl FaultClass {
    /// Every class, in the `seed % ALL.len()` dispatch order of
    /// `puffer chaos`.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::WorkerPanic,
        FaultClass::NanBurst,
        FaultClass::SlowStage,
        FaultClass::JournalWrite,
        FaultClass::DiskFull,
        FaultClass::TornWrite,
        FaultClass::FsyncFail,
        FaultClass::RenameFail,
        FaultClass::ShortRead,
    ];

    /// The filesystem fault classes, injected by the [`fsx`] hook rather
    /// than the flow-level chaos plan.
    pub const FS: [FaultClass; 5] = [
        FaultClass::DiskFull,
        FaultClass::TornWrite,
        FaultClass::FsyncFail,
        FaultClass::RenameFail,
        FaultClass::ShortRead,
    ];

    /// The flow-level fault classes (everything that is not filesystem).
    pub const FLOW: [FaultClass; 4] = [
        FaultClass::WorkerPanic,
        FaultClass::NanBurst,
        FaultClass::SlowStage,
        FaultClass::JournalWrite,
    ];

    /// Whether this class is injected by the [`fsx`] filesystem hook.
    pub fn is_fs(self) -> bool {
        matches!(
            self,
            FaultClass::DiskFull
                | FaultClass::TornWrite
                | FaultClass::FsyncFail
                | FaultClass::RenameFail
                | FaultClass::ShortRead
        )
    }

    /// The CLI / trace spelling of the class.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::WorkerPanic => "worker-panic",
            FaultClass::NanBurst => "nan-burst",
            FaultClass::SlowStage => "slow-stage",
            FaultClass::JournalWrite => "journal-write",
            FaultClass::DiskFull => "disk-full",
            FaultClass::TornWrite => "torn-write",
            FaultClass::FsyncFail => "fsync-fail",
            FaultClass::RenameFail => "rename-fail",
            FaultClass::ShortRead => "short-read",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One deterministic injection: fire `class` when the instrumented stage
/// reaches iteration/trial/round `at`, with a class-specific `magnitude`
/// (cells to poison, stall passes, …). Consumed by the `chaos` feature of
/// the core flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Which fault to inject.
    pub class: FaultClass,
    /// The loop index at which it fires.
    pub at: usize,
    /// Class-specific intensity (poisoned cells, stall passes, …).
    pub magnitude: usize,
}

// ---------------------------------------------------------------------------
// Worker-thread sizing (shared by route and congest)
// ---------------------------------------------------------------------------

/// Upper clamp for worker pools: beyond this, per-thread overhead dominates
/// on the net-decomposition workloads both users run.
pub const MAX_WORKER_THREADS: usize = 32;

/// Clamps a requested worker count into `1..=MAX_WORKER_THREADS`.
pub fn clamp_threads(requested: usize) -> usize {
    requested.clamp(1, MAX_WORKER_THREADS)
}

/// The default worker-thread count: the machine's available parallelism,
/// clamped into `1..=MAX_WORKER_THREADS`; 4 when the machine will not say.
pub fn default_threads() -> usize {
    clamp_threads(
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_never_expires() {
        let b = Budget::unbounded();
        assert!(b.check().is_ok());
        assert!(!b.is_exhausted());
        assert_eq!(b.fraction_remaining(), 1.0);
        assert!(b.remaining().is_none());
        assert!(!b.is_bounded());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(Cancelled::Deadline));
        assert!(b.is_exhausted());
        assert_eq!(b.fraction_remaining(), 0.0);
    }

    #[test]
    fn token_cancels_all_clones() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        let clone = b.clone();
        assert!(clone.check().is_ok());
        b.token().cancel();
        assert_eq!(clone.check(), Err(Cancelled::Token));
        // Token beats the (distant) deadline in the error.
        assert_eq!(b.check(), Err(Cancelled::Token));
    }

    #[test]
    fn signal_aware_token_trips_on_sigterm() {
        let plain = CancelToken::new();
        let token = CancelToken::cancel_on_signal();
        assert!(!token.is_cancelled(), "no signal delivered yet");
        assert!(!token.signal_received());
        signal::deliver(signal::SIGTERM);
        assert!(token.is_cancelled());
        assert!(token.signal_received());
        let budget = Budget::unbounded().with_token(token.clone());
        assert_eq!(budget.check(), Err(Cancelled::Token));
        // Signals never leak into signal-unaware tokens…
        assert!(!plain.is_cancelled());
        assert!(!plain.signal_received());
        // …and delivery is sticky: later signal-aware tokens are born
        // cancelled, which is what a drain-then-exit path wants.
        assert!(CancelToken::cancel_on_signal().is_cancelled());
    }

    #[test]
    fn fraction_remaining_decreases() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        let f = b.fraction_remaining();
        assert!(f > 0.99 && f <= 1.0, "{f}");
    }

    #[test]
    fn degrade_step_round_trips_through_names() {
        for step in DegradeStep::ALL {
            assert_eq!(step.as_str().parse::<DegradeStep>(), Ok(step));
        }
        assert!("bogus".parse::<DegradeStep>().is_err());
    }

    #[test]
    fn ladder_parses_specs() {
        assert_eq!(
            DegradationLadder::parse("default").unwrap(),
            DegradationLadder::default()
        );
        assert!(DegradationLadder::parse("none").unwrap().steps().is_empty());
        let l = DegradationLadder::parse("freeze-padding@0.4,early-exit-gp@0.1").unwrap();
        assert_eq!(
            l.steps(),
            &[
                (DegradeStep::FreezePadding, 0.4),
                (DegradeStep::EarlyExitGp, 0.1)
            ]
        );
        assert!(DegradationLadder::parse("nope").is_err());
        assert!(DegradationLadder::parse("freeze-padding@2.0").is_err());
        assert!(DegradationLadder::parse("freeze-padding,freeze-padding").is_err());
        // Increasing thresholds violate the declared order.
        assert!(DegradationLadder::parse("early-exit-gp@0.1,freeze-padding@0.4").is_err());
    }

    #[test]
    fn ladder_defaults_respect_declared_order() {
        // A step listed after a tighter one inherits the tighter threshold
        // rather than erroring (its default would be higher).
        let l = DegradationLadder::parse("early-exit-gp@0.1,cap-trials").unwrap();
        assert_eq!(l.steps()[1], (DegradeStep::CapTrials, 0.1));
    }

    #[test]
    fn ladder_state_engages_in_order() {
        let mut state = LadderState::new(DegradationLadder::default());
        assert!(state.poll(&Budget::unbounded()).is_empty());
        // An already-expired budget engages the whole ladder at once.
        let expired = Budget::with_deadline(Duration::ZERO);
        let fresh = state.poll(&expired);
        assert_eq!(fresh, DegradeStep::ALL.to_vec());
        assert!(state.poll(&expired).is_empty(), "steps engage once");
        for step in DegradeStep::ALL {
            assert!(state.is_engaged(step));
        }
    }

    #[test]
    fn ladder_force_engages_once() {
        let mut state = LadderState::new(DegradationLadder::default());
        assert!(state.force(DegradeStep::EarlyExitGp));
        assert!(state.is_engaged(DegradeStep::EarlyExitGp));
        assert!(!state.force(DegradeStep::EarlyExitGp), "already engaged");
        assert!(!state.is_engaged(DegradeStep::FreezePadding));
        let mut empty = LadderState::new(DegradationLadder::none());
        assert!(!empty.force(DegradeStep::EarlyExitGp), "not in ladder");
    }

    #[test]
    fn watchdog_trips_only_without_progress() {
        let mut dog = StallWatchdog::new(Duration::from_millis(20));
        assert!(dog.observe(1).is_none());
        assert!(dog.observe(2).is_none(), "advancing counter never trips");
        std::thread::sleep(Duration::from_millis(30));
        let stalled = dog.observe(2).expect("stall past the window");
        assert!(stalled >= Duration::from_millis(20));
        assert!(dog.is_tripped());
        assert!(dog.observe(2).is_none(), "reports once");
    }

    #[test]
    fn watchdog_resets_on_progress() {
        let mut dog = StallWatchdog::new(Duration::from_millis(30));
        assert!(dog.observe(1).is_none());
        std::thread::sleep(Duration::from_millis(15));
        assert!(dog.observe(2).is_none());
        std::thread::sleep(Duration::from_millis(15));
        // 30ms elapsed overall but only 15ms since the last advance.
        assert!(dog.observe(2).is_none());
        assert!(!dog.is_tripped());
    }

    #[test]
    fn fault_classes_have_stable_names() {
        let names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            names,
            [
                "worker-panic",
                "nan-burst",
                "slow-stage",
                "journal-write",
                "disk-full",
                "torn-write",
                "fsync-fail",
                "rename-fail",
                "short-read"
            ]
        );
        assert_eq!(FaultClass::FLOW.len() + FaultClass::FS.len(), FaultClass::ALL.len());
        assert!(FaultClass::FS.iter().all(|c| c.is_fs()));
        assert!(FaultClass::FLOW.iter().all(|c| !c.is_fs()));
    }

    #[test]
    fn thread_helpers_clamp() {
        assert_eq!(clamp_threads(0), 1);
        assert_eq!(clamp_threads(8), 8);
        assert_eq!(clamp_threads(10_000), MAX_WORKER_THREADS);
        let d = default_threads();
        assert!((1..=MAX_WORKER_THREADS).contains(&d));
    }
}
