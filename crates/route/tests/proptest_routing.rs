//! Property-based tests on the routing path search.

use proptest::prelude::*;
use puffer_db::geom::Rect;
use puffer_db::grid::Grid;
use puffer_route::path::{apply_path, maze_route, path_cost, pattern_route};
use puffer_route::RoutingGrid;

fn grid_with_noise(seed_usage: &[(usize, usize, f64, bool)]) -> RoutingGrid {
    let r = Rect::new(0.0, 0.0, 12.0, 12.0);
    let mut g = RoutingGrid::new(Grid::filled(r, 12, 12, 2.0), Grid::filled(r, 12, 12, 2.0));
    for &(x, y, amount, horizontal) in seed_usage {
        let d = if horizontal {
            puffer_route::Dir::H
        } else {
            puffer_route::Dir::V
        };
        g.charge(x % 12, y % 12, d, amount);
    }
    g
}

fn is_connected(p: &[(usize, usize)]) -> bool {
    p.windows(2)
        .all(|w| w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1) == 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pattern routes are connected, endpoint-correct, and of minimal
    /// rectilinear length.
    #[test]
    fn pattern_routes_are_minimal(
        ax in 0usize..12, ay in 0usize..12,
        bx in 0usize..12, by in 0usize..12,
        usage in prop::collection::vec((0usize..12, 0usize..12, 0.0..20.0f64, any::<bool>()), 0..10),
    ) {
        let g = grid_with_noise(&usage);
        let p = pattern_route(&g, (ax, ay), (bx, by), 4);
        prop_assert!(is_connected(&p));
        prop_assert_eq!(*p.first().unwrap(), (ax, ay));
        prop_assert_eq!(*p.last().unwrap(), (bx, by));
        // Pattern routes never detour: length = manhattan + 1.
        prop_assert_eq!(p.len(), ax.abs_diff(bx) + ay.abs_diff(by) + 1);
    }

    /// Maze routes are connected and never cost more than the best pattern
    /// route under the same grid state.
    #[test]
    fn maze_routes_never_lose_to_patterns(
        ax in 0usize..12, ay in 0usize..12,
        bx in 0usize..12, by in 0usize..12,
        usage in prop::collection::vec((0usize..12, 0usize..12, 0.0..30.0f64, any::<bool>()), 0..14),
    ) {
        let g = grid_with_noise(&usage);
        let maze = maze_route(&g, (ax, ay), (bx, by));
        prop_assert!(is_connected(&maze));
        prop_assert_eq!(*maze.last().unwrap(), (bx, by));
        let pattern = pattern_route(&g, (ax, ay), (bx, by), 4);
        prop_assert!(
            path_cost(&g, &maze) <= path_cost(&g, &pattern) + 1e-6,
            "maze {} > pattern {}", path_cost(&g, &maze), path_cost(&g, &pattern)
        );
    }

    /// Applying then refunding any path restores the exact usage state.
    #[test]
    fn apply_refund_is_lossless(
        ax in 0usize..12, ay in 0usize..12,
        bx in 0usize..12, by in 0usize..12,
        usage in prop::collection::vec((0usize..12, 0usize..12, 0.0..10.0f64, any::<bool>()), 0..8),
    ) {
        let mut g = grid_with_noise(&usage);
        let before = g.to_congestion_map();
        let p = maze_route(&g, (ax, ay), (bx, by));
        apply_path(&mut g, &p, 1.0);
        apply_path(&mut g, &p, -1.0);
        let after = g.to_congestion_map();
        for (a, b) in before.h_demand().as_slice().iter().zip(after.h_demand().as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in before.v_demand().as_slice().iter().zip(after.v_demand().as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
