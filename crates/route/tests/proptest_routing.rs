//! Property-based tests on the routing path search, driven by the
//! in-workspace `puffer_rng::check` harness.

use puffer_db::geom::Rect;
use puffer_db::grid::Grid;
use puffer_rng::check::{run_cases, vec_of};
use puffer_rng::{prop_check, StdRng};
use puffer_route::path::{apply_path, maze_route, path_cost, pattern_route};
use puffer_route::RoutingGrid;

fn grid_with_noise(seed_usage: &[(usize, usize, f64, bool)]) -> RoutingGrid {
    let r = Rect::new(0.0, 0.0, 12.0, 12.0);
    let mut g = RoutingGrid::new(Grid::filled(r, 12, 12, 2.0), Grid::filled(r, 12, 12, 2.0));
    for &(x, y, amount, horizontal) in seed_usage {
        let d = if horizontal {
            puffer_route::Dir::H
        } else {
            puffer_route::Dir::V
        };
        g.charge(x % 12, y % 12, d, amount);
    }
    g
}

fn is_connected(p: &[(usize, usize)]) -> bool {
    p.windows(2)
        .all(|w| w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1) == 1)
}

fn endpoints(rng: &mut StdRng) -> ((usize, usize), (usize, usize)) {
    (
        (rng.gen_range(0..12usize), rng.gen_range(0..12usize)),
        (rng.gen_range(0..12usize), rng.gen_range(0..12usize)),
    )
}

fn usage(rng: &mut StdRng, max: usize, max_amount: f64) -> Vec<(usize, usize, f64, bool)> {
    vec_of(rng, 0..max, |r| {
        (
            r.gen_range(0..12usize),
            r.gen_range(0..12usize),
            r.gen_range(0.0..max_amount),
            r.gen_bool(0.5),
        )
    })
}

/// Pattern routes are connected, endpoint-correct, and of minimal
/// rectilinear length.
#[test]
fn pattern_routes_are_minimal() {
    run_cases(
        48,
        0x3001,
        |rng| {
            let (a, b) = endpoints(rng);
            (a, b, usage(rng, 10, 20.0))
        },
        |((ax, ay), (bx, by), usage)| {
            let g = grid_with_noise(usage);
            let p = pattern_route(&g, (*ax, *ay), (*bx, *by), 4);
            prop_check!(is_connected(&p));
            prop_check!(*p.first().unwrap() == (*ax, *ay));
            prop_check!(*p.last().unwrap() == (*bx, *by));
            // Pattern routes never detour: length = manhattan + 1.
            prop_check!(
                p.len() == ax.abs_diff(*bx) + ay.abs_diff(*by) + 1,
                "detouring pattern route of length {}",
                p.len()
            );
            Ok(())
        },
    );
}

/// Maze routes are connected and never cost more than the best pattern
/// route under the same grid state.
#[test]
fn maze_routes_never_lose_to_patterns() {
    run_cases(
        48,
        0x3002,
        |rng| {
            let (a, b) = endpoints(rng);
            (a, b, usage(rng, 14, 30.0))
        },
        |((ax, ay), (bx, by), usage)| {
            let g = grid_with_noise(usage);
            let maze = maze_route(&g, (*ax, *ay), (*bx, *by));
            prop_check!(is_connected(&maze));
            prop_check!(*maze.last().unwrap() == (*bx, *by));
            let pattern = pattern_route(&g, (*ax, *ay), (*bx, *by), 4);
            prop_check!(
                path_cost(&g, &maze) <= path_cost(&g, &pattern) + 1e-6,
                "maze {} > pattern {}",
                path_cost(&g, &maze),
                path_cost(&g, &pattern)
            );
            Ok(())
        },
    );
}

/// Applying then refunding any path restores the exact usage state.
#[test]
fn apply_refund_is_lossless() {
    run_cases(
        48,
        0x3003,
        |rng| {
            let (a, b) = endpoints(rng);
            (a, b, usage(rng, 8, 10.0))
        },
        |((ax, ay), (bx, by), usage)| {
            let mut g = grid_with_noise(usage);
            let before = g.to_congestion_map();
            let p = maze_route(&g, (*ax, *ay), (*bx, *by));
            apply_path(&mut g, &p, 1.0);
            apply_path(&mut g, &p, -1.0);
            let after = g.to_congestion_map();
            for (a, b) in before
                .h_demand()
                .as_slice()
                .iter()
                .zip(after.h_demand().as_slice())
            {
                prop_check!((a - b).abs() < 1e-9, "h demand drifted: {a} vs {b}");
            }
            for (a, b) in before
                .v_demand()
                .as_slice()
                .iter()
                .zip(after.v_demand().as_slice())
            {
                prop_check!((a - b).abs() < 1e-9, "v demand drifted: {a} vs {b}");
            }
            Ok(())
        },
    );
}
