//! Layer assignment: lifting the 2-D routing solution onto the metal stack.
//!
//! Industrial global routers (including the paper's evaluator) are
//! three-dimensional: after 2-D path search, every straight wire run is
//! assigned to a metal layer of the matching preferred direction, and vias
//! connect runs on different layers. This module implements the standard
//! two-phase approach (2-D route, then congestion-aware greedy layer
//! assignment, long runs first), turning [`crate::RouteReport`] paths into
//! per-layer usage maps and a via count.

use puffer_db::cast;
use crate::path::Path;
use puffer_db::design::Design;
use puffer_db::grid::Grid;
use puffer_db::tech::PreferredDirection;

/// Per-layer result of layer assignment.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name (`"M2"`, …).
    pub name: String,
    /// Preferred direction.
    pub direction: PreferredDirection,
    /// Usage map (tracks per Gcell).
    pub usage: Grid<f64>,
    /// Capacity map (tracks per Gcell).
    pub capacity: Grid<f64>,
    /// Overflow ratio on this layer (`Σ overuse / Σ capacity`).
    pub overflow_ratio: f64,
}

/// The complete layer assignment.
#[derive(Debug, Clone)]
pub struct LayerAssignment {
    /// One report per routing layer (M1 excluded), bottom-up.
    pub layers: Vec<LayerReport>,
    /// Total via count (one per direction change or layer switch).
    pub vias: usize,
}

impl LayerAssignment {
    /// Worst per-layer overflow ratio.
    pub fn max_overflow_ratio(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.overflow_ratio)
            .fold(0.0, f64::max)
    }
}

/// Configuration for layer assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerConfig {
    /// Power-grid derate applied to every layer's capacity (kept equal to
    /// the 2-D router's derate for consistency with Eq. (8)).
    pub power_derate: f64,
    /// Gcell edge length in row heights (must match the 2-D router).
    pub gcell_rows: f64,
}

impl Default for LayerConfig {
    fn default() -> Self {
        LayerConfig {
            power_derate: 0.12,
            gcell_rows: 3.0,
        }
    }
}

/// Assigns every straight run of the given 2-D paths to a metal layer.
///
/// Runs are processed longest-first (long wires go to the fastest-filling
/// upper layers only when lower layers overflow); each run goes to the
/// direction-matching layer that minimizes the added overflow, ties broken
/// towards the lowest layer. Vias are counted per direction change plus
/// one per path endpoint (pin access).
pub fn assign_layers(design: &Design, paths: &[Path], config: &LayerConfig) -> LayerAssignment {
    let tech = design.tech();
    let region = design.region();
    let gsize = (config.gcell_rows * tech.row_height).max(tech.row_height);
    let nx = cast::trunc_idx((region.width() / gsize).ceil().max(1.0));
    let ny = cast::trunc_idx((region.height() / gsize).ceil().max(1.0));
    let template: Grid<f64> = Grid::new(region, nx, ny);
    let (dx, dy) = (template.dx(), template.dy());

    // Per-layer capacity (Eq. (8) per layer): macros block every layer
    // except the topmost of each direction.
    let routing_layers: Vec<_> = tech.layers.iter().skip(1).collect();
    let top_h = routing_layers
        .iter()
        .rposition(|l| l.direction == PreferredDirection::Horizontal);
    let top_v = routing_layers
        .iter()
        .rposition(|l| l.direction == PreferredDirection::Vertical);
    let mut reports: Vec<LayerReport> = routing_layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let extent = if l.direction == PreferredDirection::Horizontal {
                dy
            } else {
                dx
            };
            let basic = l.tracks_over(extent) * (1.0 - config.power_derate);
            let mut capacity = Grid::filled(region, nx, ny, basic);
            let is_top = Some(i) == top_h || Some(i) == top_v;
            if !is_top {
                for (_, shape) in design.macro_shapes() {
                    if let Some((ix_lo, ix_hi, iy_lo, iy_hi)) = capacity.cells_overlapping(&shape) {
                        for iy in iy_lo..=iy_hi {
                            for ix in ix_lo..=ix_hi {
                                let cell = capacity.cell_rect(ix, iy);
                                let ov = shape.intersection(&cell);
                                if ov.area() <= 0.0 {
                                    continue;
                                }
                                let loss = if l.direction == PreferredDirection::Horizontal {
                                    ov.height() / l.pitch() * (ov.width() / cell.width())
                                } else {
                                    ov.width() / l.pitch() * (ov.height() / cell.height())
                                };
                                let c = capacity.at_mut(ix, iy);
                                *c = (*c - loss).max(0.0);
                            }
                        }
                    }
                }
            }
            LayerReport {
                name: l.name.clone(),
                direction: l.direction,
                usage: Grid::new(region, nx, ny),
                capacity,
                overflow_ratio: 0.0,
            }
        })
        .collect();

    // Decompose paths into straight runs.
    struct Run {
        cells: Vec<(usize, usize)>,
        dir: PreferredDirection,
    }
    let mut runs: Vec<Run> = Vec::new();
    let mut vias = 0usize;
    for path in paths {
        if path.len() < 2 {
            continue;
        }
        vias += 2; // pin access at both endpoints
        let mut start = 0usize;
        let mut cur_dir = run_dir(path[0], path[1]);
        for k in 1..path.len() {
            let d = run_dir(path[k - 1], path[k]);
            if d != cur_dir {
                runs.push(Run {
                    cells: path[start..k].to_vec(),
                    dir: cur_dir,
                });
                vias += 1;
                start = k - 1;
                cur_dir = d;
            }
        }
        runs.push(Run {
            cells: path[start..].to_vec(),
            dir: cur_dir,
        });
    }
    // Longest runs first; deterministic tie-break on coordinates.
    runs.sort_by(|a, b| {
        b.cells
            .len()
            .cmp(&a.cells.len())
            .then_with(|| a.cells.cmp(&b.cells))
    });

    // Greedy assignment.
    let h_layers: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.direction == PreferredDirection::Horizontal)
        .map(|(i, _)| i)
        .collect();
    let v_layers: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.direction == PreferredDirection::Vertical)
        .map(|(i, _)| i)
        .collect();
    for run in &runs {
        let candidates = if run.dir == PreferredDirection::Horizontal {
            &h_layers
        } else {
            &v_layers
        };
        if candidates.is_empty() {
            continue;
        }
        let mut best = candidates[0];
        let mut best_cost = f64::INFINITY;
        for &li in candidates {
            let r = &reports[li];
            let mut cost = 0.0;
            for w in run.cells.windows(2) {
                for &(x, y) in &[w[0], w[1]] {
                    let after = r.usage.at(x, y) + 0.5;
                    cost += (after - r.capacity.at(x, y)).max(0.0);
                }
            }
            if cost < best_cost - 1e-12 {
                best_cost = cost;
                best = li;
            }
        }
        let r = &mut reports[best];
        for w in run.cells.windows(2) {
            for &(x, y) in &[w[0], w[1]] {
                *r.usage.at_mut(x, y) += 0.5;
            }
        }
    }

    for r in &mut reports {
        let mut over = 0.0;
        for iy in 0..ny {
            for ix in 0..nx {
                over += (r.usage.at(ix, iy) - r.capacity.at(ix, iy)).max(0.0);
            }
        }
        r.overflow_ratio = over / r.capacity.sum().max(1e-9);
    }
    LayerAssignment {
        layers: reports,
        vias,
    }
}

fn run_dir(a: (usize, usize), b: (usize, usize)) -> PreferredDirection {
    if a.1 == b.1 {
        PreferredDirection::Horizontal
    } else {
        PreferredDirection::Vertical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::design::Design;
    use puffer_db::geom::Rect;
    use puffer_db::netlist::NetlistBuilder;
    use puffer_db::tech::Technology;

    fn empty_design() -> Design {
        Design::new(
            "t",
            NetlistBuilder::new().build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 30.0, 30.0),
        )
        .unwrap()
    }

    #[test]
    fn runs_go_to_matching_direction_layers() {
        let d = empty_design();
        // One horizontal path and one vertical path.
        let paths = vec![
            vec![(0, 0), (1, 0), (2, 0), (3, 0)],
            vec![(5, 0), (5, 1), (5, 2)],
        ];
        let a = assign_layers(&d, &paths, &LayerConfig::default());
        for l in &a.layers {
            let used = l.usage.sum();
            if used > 0.0 {
                match l.direction {
                    PreferredDirection::Horizontal => {
                        assert!((0..4).any(|x| *l.usage.at(x, 0) > 0.0))
                    }
                    PreferredDirection::Vertical => {
                        assert!((0..3).any(|y| *l.usage.at(5, y) > 0.0))
                    }
                }
            }
        }
        // Total charged usage equals total moves (each move charges 2x0.5).
        let total: f64 = a.layers.iter().map(|l| l.usage.sum()).sum();
        assert!((total - (3.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn vias_count_bends_and_endpoints() {
        let d = empty_design();
        // L-shaped path: 2 endpoint vias + 1 bend via.
        let paths = vec![vec![(0, 0), (1, 0), (1, 1)]];
        let a = assign_layers(&d, &paths, &LayerConfig::default());
        assert_eq!(a.vias, 3);
        // Straight path: endpoints only.
        let a2 = assign_layers(&d, &[vec![(0, 0), (1, 0)]], &LayerConfig::default());
        assert_eq!(a2.vias, 2);
    }

    #[test]
    fn congestion_spills_to_other_layers() {
        let d = empty_design();
        // Many identical horizontal runs over the same Gcells: more than
        // one H layer must end up used.
        let paths: Vec<_> = (0..400)
            .map(|_| vec![(0usize, 0usize), (1, 0), (2, 0)])
            .collect();
        let a = assign_layers(&d, &paths, &LayerConfig::default());
        let used_h = a
            .layers
            .iter()
            .filter(|l| l.direction == PreferredDirection::Horizontal && l.usage.sum() > 0.0)
            .count();
        assert!(
            used_h >= 2,
            "overflowing traffic must spill to another H layer"
        );
    }

    #[test]
    fn assignment_is_deterministic() {
        let d = empty_design();
        let paths: Vec<_> = (0..50)
            .map(|i| vec![(i % 5, 0), (i % 5, 1), (i % 5 + 1, 1)])
            .collect();
        let a = assign_layers(&d, &paths, &LayerConfig::default());
        let b = assign_layers(&d, &paths, &LayerConfig::default());
        assert_eq!(a.vias, b.vias);
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.usage.as_slice(), y.usage.as_slice());
        }
    }

    #[test]
    fn per_layer_capacity_is_positive_and_scaled_by_pitch() {
        let d = empty_design();
        let a = assign_layers(&d, &[], &LayerConfig::default());
        assert_eq!(a.layers.len(), d.tech().layers.len() - 1);
        // Finer-pitch layers offer more tracks.
        let m2 = a.layers.iter().find(|l| l.name == "M2").unwrap();
        let m8 = a.layers.iter().find(|l| l.name == "M8").unwrap();
        assert!(m2.capacity.sum() > m8.capacity.sum());
        assert_eq!(a.vias, 0);
        assert_eq!(a.max_overflow_ratio(), 0.0);
    }
}
