//! The routing grid: per-Gcell capacity, usage, and negotiated-congestion
//! cost bookkeeping (PathFinder-style).

use puffer_congest::CongestionMap;
use puffer_db::grid::Grid;

/// Routing direction of a move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Horizontal (east/west moves).
    H,
    /// Vertical (north/south moves).
    V,
}

/// Mutable routing state over the Gcell grid.
///
/// Usage is charged per Gcell in each direction: a move between
/// horizontally adjacent Gcells adds half a track of horizontal usage to
/// each endpoint Gcell (wire length within each cell), matching the
/// Gcell-based resource model of §II-C.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    h_cap: Grid<f64>,
    v_cap: Grid<f64>,
    h_use: Grid<f64>,
    v_use: Grid<f64>,
    h_hist: Grid<f64>,
    v_hist: Grid<f64>,
    /// Present-congestion penalty weight.
    pub present_weight: f64,
    /// History penalty weight.
    pub history_weight: f64,
    /// Cost of a bend (direction change), modelling a via.
    pub bend_cost: f64,
}

impl RoutingGrid {
    /// Builds the grid from capacity maps.
    pub fn new(h_cap: Grid<f64>, v_cap: Grid<f64>) -> Self {
        let zero = h_cap.map(|_| 0.0);
        RoutingGrid {
            h_use: zero.clone(),
            v_use: zero.clone(),
            h_hist: zero.clone(),
            v_hist: zero,
            h_cap,
            v_cap,
            present_weight: 4.0,
            history_weight: 1.0,
            bend_cost: 0.8,
        }
    }

    /// Grid width in Gcells.
    pub fn nx(&self) -> usize {
        self.h_cap.nx()
    }

    /// Grid height in Gcells.
    pub fn ny(&self) -> usize {
        self.h_cap.ny()
    }

    /// Gcell width in database units.
    pub fn dx(&self) -> f64 {
        self.h_cap.dx()
    }

    /// Gcell height in database units.
    pub fn dy(&self) -> f64 {
        self.h_cap.dy()
    }

    /// Gcell containing a point (clamped to the grid).
    pub fn cell_of(&self, p: puffer_db::geom::Point) -> (usize, usize) {
        self.h_cap.cell_of(p)
    }

    /// Total horizontal capacity over the whole grid.
    pub fn total_capacity(&self, d: Dir) -> f64 {
        self.cap_of(d).sum()
    }

    fn use_of(&self, d: Dir) -> &Grid<f64> {
        match d {
            Dir::H => &self.h_use,
            Dir::V => &self.v_use,
        }
    }

    fn cap_of(&self, d: Dir) -> &Grid<f64> {
        match d {
            Dir::H => &self.h_cap,
            Dir::V => &self.v_cap,
        }
    }

    fn hist_of(&self, d: Dir) -> &Grid<f64> {
        match d {
            Dir::H => &self.h_hist,
            Dir::V => &self.v_hist,
        }
    }

    /// Adds (or removes, for negative `amount`) usage at one Gcell.
    pub fn charge(&mut self, ix: usize, iy: usize, d: Dir, amount: f64) {
        let g = match d {
            Dir::H => &mut self.h_use,
            Dir::V => &mut self.v_use,
        };
        let v = g.at_mut(ix, iy);
        *v = (*v + amount).max(0.0);
    }

    /// Overuse (tracks beyond capacity) at a Gcell in a direction.
    pub fn overuse(&self, ix: usize, iy: usize, d: Dir) -> f64 {
        (self.use_of(d).at(ix, iy) - self.cap_of(d).at(ix, iy)).max(0.0)
    }

    /// The negotiated-congestion cost of adding `inc` usage at a Gcell.
    pub fn cost(&self, ix: usize, iy: usize, d: Dir, inc: f64) -> f64 {
        let cap = *self.cap_of(d).at(ix, iy);
        let usage = *self.use_of(d).at(ix, iy);
        let over = (usage + inc - cap).max(0.0) / cap.max(1.0);
        let hist = *self.hist_of(d).at(ix, iy);
        1.0 + self.present_weight * over + self.history_weight * hist * over.clamp(0.1, 1.0)
    }

    /// End-of-round history update: every overused Gcell accumulates
    /// pressure that persists across rounds.
    pub fn update_history(&mut self) {
        for iy in 0..self.ny() {
            for ix in 0..self.nx() {
                let oh = self.overuse(ix, iy, Dir::H);
                if oh > 0.0 {
                    *self.h_hist.at_mut(ix, iy) += oh / self.h_cap.at(ix, iy).max(1.0);
                }
                let ov = self.overuse(ix, iy, Dir::V);
                if ov > 0.0 {
                    *self.v_hist.at_mut(ix, iy) += ov / self.v_cap.at(ix, iy).max(1.0);
                }
            }
        }
    }

    /// Number of Gcells overused in either direction.
    pub fn overflow_gcells(&self) -> usize {
        let mut n = 0;
        for iy in 0..self.ny() {
            for ix in 0..self.nx() {
                if self.overuse(ix, iy, Dir::H) > 1e-9 || self.overuse(ix, iy, Dir::V) > 1e-9 {
                    n += 1;
                }
            }
        }
        n
    }

    /// `(HOF, VOF)` overflow ratios: total overused tracks over total
    /// capacity, per direction (the Table II quantities, as fractions).
    pub fn overflow_ratios(&self) -> (f64, f64) {
        let mut oh = 0.0;
        let mut ov = 0.0;
        for iy in 0..self.ny() {
            for ix in 0..self.nx() {
                oh += self.overuse(ix, iy, Dir::H);
                ov += self.overuse(ix, iy, Dir::V);
            }
        }
        (
            oh / self.h_cap.sum().max(1e-9),
            ov / self.v_cap.sum().max(1e-9),
        )
    }

    /// Snapshot of the final routing state as a [`CongestionMap`] (demand =
    /// usage), for Fig. 5-style congestion maps.
    pub fn to_congestion_map(&self) -> CongestionMap {
        CongestionMap::new(
            self.h_cap.clone(),
            self.v_cap.clone(),
            self.h_use.clone(),
            self.v_use.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;

    fn grid(cap: f64) -> RoutingGrid {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        RoutingGrid::new(Grid::filled(r, 8, 8, cap), Grid::filled(r, 8, 8, cap))
    }

    #[test]
    fn charge_and_overuse() {
        let mut g = grid(2.0);
        g.charge(3, 3, Dir::H, 2.5);
        assert!((g.overuse(3, 3, Dir::H) - 0.5).abs() < 1e-12);
        assert_eq!(g.overuse(3, 3, Dir::V), 0.0);
        g.charge(3, 3, Dir::H, -2.5);
        assert_eq!(g.overuse(3, 3, Dir::H), 0.0);
    }

    #[test]
    fn negative_usage_clamps_to_zero() {
        let mut g = grid(2.0);
        g.charge(0, 0, Dir::V, -5.0);
        assert_eq!(g.overuse(0, 0, Dir::V), 0.0);
        assert!(g.cost(0, 0, Dir::V, 0.5) >= 1.0);
    }

    #[test]
    fn cost_rises_with_congestion() {
        let mut g = grid(2.0);
        let free = g.cost(1, 1, Dir::H, 1.0);
        g.charge(1, 1, Dir::H, 3.0);
        let busy = g.cost(1, 1, Dir::H, 1.0);
        assert!(busy > free);
        assert!(
            (free - 1.0).abs() < 1e-9,
            "uncongested cost is the base cost"
        );
    }

    #[test]
    fn history_accumulates_over_rounds() {
        let mut g = grid(1.0);
        g.charge(2, 2, Dir::H, 3.0);
        let before = g.cost(2, 2, Dir::H, 0.5);
        g.update_history();
        let after1 = g.cost(2, 2, Dir::H, 0.5);
        g.update_history();
        let after2 = g.cost(2, 2, Dir::H, 0.5);
        assert!(after1 > before);
        assert!(after2 > after1);
    }

    #[test]
    fn overflow_accounting() {
        let mut g = grid(2.0);
        assert_eq!(g.overflow_gcells(), 0);
        g.charge(0, 0, Dir::H, 3.0);
        g.charge(5, 5, Dir::V, 2.5);
        assert_eq!(g.overflow_gcells(), 2);
        let (hof, vof) = g.overflow_ratios();
        assert!((hof - 1.0 / 128.0).abs() < 1e-9);
        assert!((vof - 0.5 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_map_snapshot_matches_usage() {
        let mut g = grid(2.0);
        g.charge(1, 2, Dir::H, 1.5);
        let m = g.to_congestion_map();
        assert_eq!(*m.h_demand().at(1, 2), 1.5);
        assert_eq!(*m.v_demand().at(1, 2), 0.0);
    }
}
