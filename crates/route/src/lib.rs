//! Global router and routability evaluator for PUFFER.
//!
//! The paper evaluates every placement with the Innovus global router; that
//! tool is proprietary, so this crate provides the substitute: a
//! from-scratch Gcell-grid global router with
//!
//! * blockage-aware capacity (shared with [`puffer_congest`], Eq. (8));
//! * FLUTE-style RSMT decomposition of every net into two-point nets
//!   ([`puffer_flute`]);
//! * pattern routing (best of L/Z candidates) for the initial solution;
//! * PathFinder-style negotiated-congestion rip-up-and-reroute with A*
//!   maze routing for overflowed segments ([`path::maze_route`]);
//! * a [`RouteReport`] with the Table II quantities — HOF(%), VOF(%),
//!   routed wirelength — plus Fig. 5-style congestion maps;
//! * [`GlobalRouter::try_route`], which rejects hostile inputs (NaN
//!   coordinates, zero-capacity grids) with a typed [`RouteError`]
//!   instead of routing garbage.
//!
//! All three placement flows in the reproduction are judged by this same
//! router, mirroring the paper's use of one common evaluator.
//!
//! # Example
//!
//! ```
//! use puffer_route::{GlobalRouter, RouterConfig};
//! use puffer_gen::{generate, GeneratorConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig {
//!     num_cells: 300, num_nets: 330, ..GeneratorConfig::default()
//! })?;
//! let router = GlobalRouter::new(&design, RouterConfig::default());
//! let report = router.route(&design, &design.initial_placement());
//! assert!(report.wirelength >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod grid;
pub mod layers;
pub mod path;

pub use grid::{Dir, RoutingGrid};
pub use layers::{assign_layers, LayerAssignment, LayerConfig, LayerReport};

use puffer_db::cast;
use puffer_budget::Budget;
/// Shared worker-thread defaults (hoisted to `puffer-budget` so the router
/// and the congestion estimator clamp identically).
pub use puffer_budget::{clamp_threads, default_threads};
use puffer_congest::{build_capacity, CongestionMap, EstimatorConfig};
use puffer_db::design::{Design, Placement};
use puffer_flute::Topology;

/// Errors produced by [`GlobalRouter::try_route`]: hostile inputs the
/// router refuses to route rather than producing garbage.
#[derive(Debug)]
pub enum RouteError {
    /// A cell position is NaN or infinite, so Gcell binning is undefined.
    NonFinitePlacement {
        /// Name of the first offending cell.
        cell: String,
    },
    /// The routing grid has no capacity in one direction (e.g. blockages
    /// or derates consumed everything): overflow ratios are meaningless.
    ZeroCapacity(String),
    /// The placement's coordinate vectors do not match the design.
    BadInput(String),
    /// A worker thread panicked; the payload message is preserved. The
    /// panic is contained here instead of unwinding through `join()` —
    /// re-raising inside `thread::scope` aborts the whole process when a
    /// second worker panics during the unwind.
    WorkerPanic(String),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NonFinitePlacement { cell } => {
                write!(f, "cell '{cell}' has a non-finite position")
            }
            RouteError::ZeroCapacity(m) => write!(f, "routing grid has no capacity: {m}"),
            RouteError::BadInput(m) => write!(f, "bad routing input: {m}"),
            RouteError::WorkerPanic(m) => write!(f, "router worker panicked: {m}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Router configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Gcell edge length in row heights (shared with the estimator).
    pub gcell_rows: f64,
    /// Power-grid capacity derate (shared with the estimator).
    pub power_derate: f64,
    /// Maximum rip-up-and-reroute rounds after the initial pattern pass.
    pub max_rounds: usize,
    /// Z-pattern bend samples for pattern routing.
    pub max_bends: usize,
    /// Worker threads for topology construction.
    pub threads: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            gcell_rows: 3.0,
            power_derate: 0.12,
            max_rounds: 12,
            max_bends: 6,
            threads: default_threads(),
        }
    }
}

/// The routing result: the quantities of the paper's Table II.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Horizontal overflow ratio in percent (Table II "HOF(%)").
    pub hof_pct: f64,
    /// Vertical overflow ratio in percent (Table II "VOF(%)").
    pub vof_pct: f64,
    /// Routed wirelength in database units (Table II "WL").
    pub wirelength: f64,
    /// Number of Gcells still overused after the final round.
    pub overflow_gcells: usize,
    /// Rip-up rounds actually executed.
    pub rounds: usize,
    /// Final usage/capacity maps (for Fig. 5 congestion maps).
    pub congestion: CongestionMap,
    /// The final 2-D path of every routed two-point net (input to
    /// [`assign_layers`]).
    pub paths: Vec<path::Path>,
}

impl RouteReport {
    /// The paper's pass criterion: both overflow ratios below 1%.
    pub fn passes(&self) -> bool {
        self.hof_pct < 1.0 && self.vof_pct < 1.0
    }
}

/// The global router. Capacity is computed once per design.
#[derive(Debug, Clone)]
pub struct GlobalRouter {
    config: RouterConfig,
    base: RoutingGrid,
    budget: Budget,
}

impl GlobalRouter {
    /// Builds the router (and its capacity maps) for a design.
    pub fn new(design: &Design, config: RouterConfig) -> Self {
        let est = EstimatorConfig {
            gcell_rows: config.gcell_rows,
            power_derate: config.power_derate,
            ..EstimatorConfig::default()
        };
        let (h_cap, v_cap) = build_capacity(design, &est);
        GlobalRouter {
            config,
            base: RoutingGrid::new(h_cap, v_cap),
            budget: Budget::unbounded(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Attaches an execution budget. Rip-up-and-reroute checks it between
    /// rounds (and every few hundred nets within a round): an expired
    /// deadline or an external cancel stops refinement and reports the
    /// best-so-far routing — the initial pattern pass always completes, so
    /// the report is well-formed either way.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Routes a placement and reports HOF/VOF/WL.
    ///
    /// # Panics
    ///
    /// Panics on the hostile inputs [`GlobalRouter::try_route`] rejects
    /// with a [`RouteError`]; use that method when the placement comes
    /// from an untrusted or possibly-diverged source.
    pub fn route(&self, design: &Design, placement: &Placement) -> RouteReport {
        self.try_route(design, placement)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`GlobalRouter::route`].
    ///
    /// # Errors
    ///
    /// [`RouteError::BadInput`] when the placement's size disagrees with
    /// the design, [`RouteError::NonFinitePlacement`] when any cell
    /// position is NaN/infinite, and [`RouteError::ZeroCapacity`] when a
    /// direction has no routing capacity at all.
    pub fn try_route(
        &self,
        design: &Design,
        placement: &Placement,
    ) -> Result<RouteReport, RouteError> {
        let netlist_check = design.netlist();
        if placement.len() != netlist_check.num_cells() {
            return Err(RouteError::BadInput(format!(
                "placement has {} cells, design has {}",
                placement.len(),
                netlist_check.num_cells()
            )));
        }
        for (id, _) in netlist_check.iter_cells() {
            let p = placement.pos(id);
            if !p.x.is_finite() || !p.y.is_finite() {
                return Err(RouteError::NonFinitePlacement {
                    cell: netlist_check.cell(id).name.clone(),
                });
            }
        }
        if self.base.total_capacity(Dir::H) <= 0.0 {
            return Err(RouteError::ZeroCapacity("horizontal".into()));
        }
        if self.base.total_capacity(Dir::V) <= 0.0 {
            return Err(RouteError::ZeroCapacity("vertical".into()));
        }

        let mut grid = self.base.clone();
        let netlist = design.netlist();

        // --- decompose all nets into two-point segments (parallel) -------
        // Chunking, thread clamping, and panic draining all go through
        // puffer-par: fixed net-index chunks, one endpoint list per chunk,
        // concatenated in chunk order.
        //
        // Pins are quantized to router Gcells BEFORE the RSMT is built (the
        // same quantize-first scheme as `puffer_congest::demand`): the tree
        // is then a pure function of the pin-Gcell multiset, Steiner medians
        // land on exact integer coordinates, and two pins that share a Gcell
        // can never produce a spurious cross-Gcell segment from sub-Gcell
        // coordinate noise.
        let net_ids: Vec<_> = netlist.iter_nets().map(|(id, _)| id).collect();
        type Endpoints = Vec<((usize, usize), (usize, usize))>;
        let gridref = &grid;
        let parts = puffer_par::try_map_chunks(net_ids.len(), self.config.threads, |range| {
            let mut out: Endpoints = Vec::new();
            let mut cells: Vec<(u32, u32)> = Vec::new();
            for i in range {
                let net_id = net_ids[i];
                if netlist.net_degree(net_id) < 2 {
                    continue;
                }
                cells.clear();
                for &pid in netlist.net_pins(net_id) {
                    let (ix, iy) = gridref.cell_of(placement.pin_pos(netlist, pid));
                    cells.push((cast::idx_u32(ix), cast::idx_u32(iy)));
                }
                let topo = Topology::from_gcells(&cells);
                for seg in topo.segments() {
                    let na = &topo.nodes()[seg.a];
                    let nb = &topo.nodes()[seg.b];
                    let a = (cast::trunc_idx(na.pos.x), cast::trunc_idx(na.pos.y));
                    let b = (cast::trunc_idx(nb.pos.x), cast::trunc_idx(nb.pos.y));
                    if a != b {
                        out.push((a, b));
                    }
                }
            }
            out
        })
        .map_err(|e| RouteError::WorkerPanic(e.0))?;
        let mut endpoints: Endpoints = Vec::new();
        for r in parts {
            endpoints.extend(r);
        }
        // Short segments first: they have the least routing freedom.
        endpoints.sort_by_key(|&(a, b)| (a.0.abs_diff(b.0) + a.1.abs_diff(b.1), a, b));

        // --- initial pattern pass ----------------------------------------
        let mut paths: Vec<path::Path> = Vec::with_capacity(endpoints.len());
        for &(a, b) in &endpoints {
            let p = path::pattern_route(&grid, a, b, self.config.max_bends);
            path::apply_path(&mut grid, &p, 1.0);
            paths.push(p);
        }

        // --- negotiated rip-up-and-reroute --------------------------------
        // Cancellation points: between rounds and every 256 maze routes
        // within a round. Stopping mid-round is safe — each reroute leaves
        // the grid and `paths` mutually consistent — so the report below is
        // simply the best routing found so far.
        let mut rounds = 0;
        'ripup: for _ in 0..self.config.max_rounds {
            if grid.overflow_gcells() == 0 || self.budget.is_exhausted() {
                break;
            }
            rounds += 1;
            grid.update_history();
            let mut rerouted = 0usize;
            for i in 0..paths.len() {
                if !path::path_overflows(&grid, &paths[i]) {
                    continue;
                }
                let (a, b) = endpoints[i];
                path::apply_path(&mut grid, &paths[i], -1.0);
                let p = path::maze_route(&grid, a, b);
                path::apply_path(&mut grid, &p, 1.0);
                paths[i] = p;
                rerouted += 1;
                if rerouted.is_multiple_of(256) && self.budget.is_exhausted() {
                    break 'ripup;
                }
            }
            if rerouted == 0 {
                break;
            }
        }

        // --- report -------------------------------------------------------
        let (hof, vof) = grid.overflow_ratios();
        let mut wirelength = 0.0;
        for p in &paths {
            for w in p.windows(2) {
                wirelength += if w[0].1 == w[1].1 {
                    grid.dx()
                } else {
                    grid.dy()
                };
            }
        }
        Ok(RouteReport {
            hof_pct: hof * 100.0,
            vof_pct: vof * 100.0,
            wirelength,
            overflow_gcells: grid.overflow_gcells(),
            rounds,
            congestion: grid.to_congestion_map(),
            paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Point;
    use puffer_gen::{generate, GeneratorConfig};

    fn design(hotspot: f64) -> Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 440,
            num_macros: 1,
            hotspot,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    fn spread_placement(d: &Design, frac: f64) -> Placement {
        let r = d.region();
        let c = r.center();
        let n = d.netlist().movable_cells().count();
        let cluster = 48usize;
        let tiles = n.div_ceil(cluster);
        let tpr = (tiles as f64).sqrt().ceil() as usize;
        let inner = (cluster as f64).sqrt().ceil() as usize;
        let mut p = d.initial_placement();
        for (i, id) in d.netlist().movable_cells().enumerate() {
            let t = i / cluster;
            let j = i % cluster;
            let fx =
                ((t % tpr) as f64 + ((j % inner) as f64 + 0.5) / inner as f64) / tpr as f64 - 0.5;
            let fy =
                ((t / tpr) as f64 + ((j / inner) as f64 + 0.5) / inner as f64) / tpr as f64 - 0.5;
            p.set(
                id,
                Point::new(c.x + fx * frac * r.width(), c.y + fy * frac * r.height()),
            );
        }
        p
    }

    #[test]
    fn router_reports_finite_metrics() {
        let d = design(0.2);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let rep = router.route(&d, &spread_placement(&d, 0.9));
        assert!(rep.hof_pct >= 0.0 && rep.hof_pct.is_finite());
        assert!(rep.vof_pct >= 0.0 && rep.vof_pct.is_finite());
        assert!(rep.wirelength > 0.0);
    }

    #[test]
    fn clustered_placements_route_worse() {
        let d = design(0.5);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let tight = router.route(&d, &spread_placement(&d, 0.25));
        let loose = router.route(&d, &spread_placement(&d, 0.9));
        assert!(
            tight.hof_pct + tight.vof_pct > loose.hof_pct + loose.vof_pct,
            "tight ({}, {}) vs loose ({}, {})",
            tight.hof_pct,
            tight.vof_pct,
            loose.hof_pct,
            loose.vof_pct
        );
    }

    #[test]
    fn rip_up_reduces_overflow() {
        let d = design(0.6);
        let no_riprup = GlobalRouter::new(
            &d,
            RouterConfig {
                max_rounds: 0,
                ..RouterConfig::default()
            },
        );
        let with = GlobalRouter::new(&d, RouterConfig::default());
        let p = spread_placement(&d, 0.5);
        let before = no_riprup.route(&d, &p);
        let after = with.route(&d, &p);
        assert!(
            after.overflow_gcells <= before.overflow_gcells,
            "rip-up should not increase overflow ({} -> {})",
            before.overflow_gcells,
            after.overflow_gcells
        );
    }

    #[test]
    fn same_gcell_nets_route_to_zero_wirelength() {
        // Pins are quantized to Gcells before the RSMT is built, so a net
        // whose pins all land in one Gcell must decompose to nothing: no
        // segments, no routed wirelength, no demand. Before the
        // quantize-first change, Steiner medians of the continuous pin
        // coordinates could straddle a Gcell edge and emit phantom
        // cross-Gcell segments for such nets.
        let d = design(0.2);
        let r = d.region();
        let router = GlobalRouter::new(&d, RouterConfig::default());
        // Collapse every movable cell to one point well inside a Gcell.
        let target = Point::new(
            r.xl + 0.37 * r.width(),
            r.yl + 0.41 * r.height(),
        );
        let mut p = d.initial_placement();
        for id in d.netlist().movable_cells() {
            p.set(id, target);
        }
        let rep = router.route(&d, &p);
        // Fixed macros still exist, so only assert the collapsed point adds
        // nothing: every routed path endpoint pair must differ (zero-length
        // two-point nets are filtered at decomposition time).
        for path in &rep.paths {
            assert!(
                path.len() > 1 && path.first() != path.last(),
                "degenerate same-Gcell segment leaked into routing"
            );
        }
        assert!(rep.wirelength.is_finite());
    }

    #[test]
    fn routing_is_deterministic() {
        let d = design(0.3);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let p = spread_placement(&d, 0.6);
        let a = router.route(&d, &p);
        let b = router.route(&d, &p);
        assert_eq!(a.wirelength, b.wirelength);
        assert_eq!(a.hof_pct, b.hof_pct);
        assert_eq!(a.overflow_gcells, b.overflow_gcells);
    }

    #[test]
    fn layer_assignment_consumes_route_paths() {
        let d = design(0.2);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let rep = router.route(&d, &spread_placement(&d, 0.9));
        assert!(!rep.paths.is_empty());
        let assignment =
            crate::layers::assign_layers(&d, &rep.paths, &crate::layers::LayerConfig::default());
        assert!(assignment.vias > 0);
        // All 2-D usage mass lands on some layer.
        let layered: f64 = assignment.layers.iter().map(|l| l.usage.sum()).sum();
        let flat = rep.congestion.h_demand().sum() + rep.congestion.v_demand().sum();
        assert!(
            (layered - flat).abs() < 1e-6,
            "layered {layered} vs flat {flat}"
        );
    }

    #[test]
    fn try_route_rejects_nan_coordinates() {
        let d = design(0.2);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let mut p = spread_placement(&d, 0.9);
        let victim = d.netlist().movable_cells().next().unwrap();
        p.set(victim, Point::new(f64::NAN, 1.0));
        let err = router.try_route(&d, &p).unwrap_err();
        assert!(
            matches!(err, RouteError::NonFinitePlacement { .. }),
            "{err}"
        );
    }

    #[test]
    fn try_route_rejects_mismatched_placement() {
        let d = design(0.2);
        let other = generate(&GeneratorConfig {
            num_cells: 50,
            num_nets: 55,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let err = router.try_route(&d, &other.initial_placement()).unwrap_err();
        assert!(matches!(err, RouteError::BadInput(_)), "{err}");
    }

    #[test]
    fn try_route_rejects_zero_capacity_grids() {
        use puffer_db::geom::Rect;
        let d = design(0.2);
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let router = GlobalRouter {
            config: RouterConfig::default(),
            base: RoutingGrid::new(
                puffer_db::grid::Grid::filled(r, 4, 4, 0.0),
                puffer_db::grid::Grid::filled(r, 4, 4, 2.0),
            ),
            budget: Budget::unbounded(),
        };
        let err = router
            .try_route(&d, &d.initial_placement())
            .unwrap_err();
        assert!(matches!(err, RouteError::ZeroCapacity(_)), "{err}");
    }

    #[test]
    fn panicking_worker_becomes_an_error_not_an_abort() {
        // Exercises the join path behind try_route's decomposition chunks,
        // now provided by puffer-par: a panicking worker must surface as
        // Err, and — critically — a *second* panicking worker must not
        // abort the process (the old `join().expect(...)` re-panic did
        // exactly that by unwinding through `thread::scope` while another
        // handle was still hot).
        let result = puffer_par::try_map_chunks(64, 4, |range| {
            if range.contains(&1) {
                panic!("worker one exploded");
            }
            if range.contains(&35) {
                std::panic::panic_any("worker two exploded".to_string());
            }
            range.len()
        });
        let msg = result.unwrap_err().0;
        assert!(msg.contains("exploded"), "{msg}");
        assert!(matches!(
            RouteError::WorkerPanic(msg),
            RouteError::WorkerPanic(_)
        ));
    }

    #[test]
    fn chunked_workers_preserve_results_when_no_panic() {
        let result = puffer_par::try_map_chunks(4, 4, |range| range.start * range.start);
        assert_eq!(result.unwrap(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn cancelled_budget_skips_ripup_but_still_reports() {
        let d = design(0.6);
        let p = spread_placement(&d, 0.5);
        let mut router = GlobalRouter::new(&d, RouterConfig::default());
        let token = puffer_budget::CancelToken::new();
        token.cancel();
        router.set_budget(Budget::unbounded().with_token(token));
        let rep = router.route(&d, &p);
        assert_eq!(rep.rounds, 0, "cancelled budget must skip rip-up rounds");
        assert!(rep.wirelength > 0.0, "pattern pass still routes everything");
        assert!(rep.hof_pct.is_finite() && rep.vof_pct.is_finite());
    }

    #[test]
    fn default_threads_is_clamped() {
        let t = default_threads();
        assert!((1..=32).contains(&t), "{t}");
    }

    #[test]
    fn pass_criterion_matches_1_percent() {
        let d = design(0.0);
        let router = GlobalRouter::new(&d, RouterConfig::default());
        let mut rep = router.route(&d, &spread_placement(&d, 0.9));
        rep.hof_pct = 0.5;
        rep.vof_pct = 0.99;
        assert!(rep.passes());
        rep.vof_pct = 1.01;
        assert!(!rep.passes());
    }
}
