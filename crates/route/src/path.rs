//! Path search: pattern routing (L/Z) and A* maze routing on the Gcell
//! grid with negotiated-congestion costs.

use puffer_db::cast;
use crate::grid::{Dir, RoutingGrid};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path: the Gcell sequence from source to target (inclusive).
pub type Path = Vec<(usize, usize)>;

/// Cost of traversing `path` under the grid's current state (as if the
/// path were about to be added).
pub fn path_cost(grid: &RoutingGrid, path: &Path) -> f64 {
    let mut cost = 0.0;
    let mut prev_dir: Option<Dir> = None;
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let d = if a.1 == b.1 { Dir::H } else { Dir::V };
        cost += 0.5 * (grid.cost(a.0, a.1, d, 0.5) + grid.cost(b.0, b.1, d, 0.5));
        if let Some(p) = prev_dir {
            if p != d {
                cost += grid.bend_cost;
            }
        }
        prev_dir = Some(d);
    }
    cost
}

/// Charges (`sign = +1`) or refunds (`sign = -1`) a path's usage.
pub fn apply_path(grid: &mut RoutingGrid, path: &Path, sign: f64) {
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let d = if a.1 == b.1 { Dir::H } else { Dir::V };
        grid.charge(a.0, a.1, d, 0.5 * sign);
        grid.charge(b.0, b.1, d, 0.5 * sign);
    }
}

/// Whether any Gcell along the path is overused.
pub fn path_overflows(grid: &RoutingGrid, path: &Path) -> bool {
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let d = if a.1 == b.1 { Dir::H } else { Dir::V };
        if grid.overuse(a.0, a.1, d) > 1e-9 || grid.overuse(b.0, b.1, d) > 1e-9 {
            return true;
        }
    }
    false
}

fn straight(path: &mut Path, from: (usize, usize), to: (usize, usize)) {
    debug_assert!(from.0 == to.0 || from.1 == to.1);
    let mut cur = from;
    while cur != to {
        if cur.0 < to.0 {
            cur.0 += 1;
        } else if cur.0 > to.0 {
            cur.0 -= 1;
        } else if cur.1 < to.1 {
            cur.1 += 1;
        } else {
            cur.1 -= 1;
        }
        path.push(cur);
    }
}

/// Builds the two L-shaped and up to `2·max_bends` Z-shaped candidate
/// paths and returns the cheapest under the grid's current cost.
pub fn pattern_route(
    grid: &RoutingGrid,
    a: (usize, usize),
    b: (usize, usize),
    max_bends: usize,
) -> Path {
    if a == b {
        return vec![a];
    }
    let mut candidates: Vec<Path> = Vec::new();
    if a.0 == b.0 || a.1 == b.1 {
        let mut p = vec![a];
        straight(&mut p, a, b);
        candidates.push(p);
    } else {
        // L via (b.x, a.y) and via (a.x, b.y).
        for bend in [(b.0, a.1), (a.0, b.1)] {
            let mut p = vec![a];
            straight(&mut p, a, bend);
            straight(&mut p, bend, b);
            candidates.push(p);
        }
        // Z with a vertical middle leg at column cx.
        let (xl, xh) = (a.0.min(b.0), a.0.max(b.0));
        for cx in sample(xl, xh, max_bends) {
            let mut p = vec![a];
            straight(&mut p, a, (cx, a.1));
            straight(&mut p, (cx, a.1), (cx, b.1));
            straight(&mut p, (cx, b.1), b);
            candidates.push(p);
        }
        // Z with a horizontal middle leg at row cy.
        let (yl, yh) = (a.1.min(b.1), a.1.max(b.1));
        for cy in sample(yl, yh, max_bends) {
            let mut p = vec![a];
            straight(&mut p, a, (a.0, cy));
            straight(&mut p, (a.0, cy), (b.0, cy));
            straight(&mut p, (b.0, cy), b);
            candidates.push(p);
        }
    }
    candidates
        .into_iter()
        .min_by(|p, q| path_cost(grid, p).total_cmp(&path_cost(grid, q)))
        .unwrap_or_else(|| {
            // Both branches above push at least one candidate; as a
            // defensive fallback, route the two pins with a single L.
            let mut p = vec![a];
            straight(&mut p, a, b);
            p
        })
}

fn sample(lo: usize, hi: usize, max: usize) -> Vec<usize> {
    if hi - lo < 2 || max == 0 {
        return Vec::new();
    }
    let count = (hi - lo - 1).min(max);
    (1..=count)
        .map(|i| lo + i * (hi - lo) / (count + 1))
        .collect()
}

#[derive(PartialEq)]
struct HeapEntry {
    f: f64,
    g: f64,
    node: usize,
    dir: u8, // 0 = none, 1 = H, 2 = V
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other.f.total_cmp(&self.f)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* maze route from `a` to `b` with congestion-aware costs. Always finds
/// a path (the grid is fully connected); the admissible heuristic is the
/// Manhattan distance at base cost.
pub fn maze_route(grid: &RoutingGrid, a: (usize, usize), b: (usize, usize)) -> Path {
    if a == b {
        return vec![a];
    }
    let (nx, ny) = (grid.nx(), grid.ny());
    let idx = |x: usize, y: usize| y * nx + x;
    // Per (node, incoming-direction) state so bends price correctly.
    // `parent[node][dir-1]` stores (parent node, parent's incoming dir).
    let mut dist = vec![[f64::INFINITY; 2]; nx * ny];
    let mut parent: Vec<[(usize, u8); 2]> = vec![[(usize::MAX, 0); 2]; nx * ny];
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        f: 0.0,
        g: 0.0,
        node: idx(a.0, a.1),
        dir: 0,
    });

    let h = |x: usize, y: usize| -> f64 { cast::idx_f64(x.abs_diff(b.0) + y.abs_diff(b.1)) };

    let target = idx(b.0, b.1);
    while let Some(HeapEntry { g, node, dir, .. }) = heap.pop() {
        if dir != 0 && g > dist[node][usize::from(dir - 1)] + 1e-12 {
            continue;
        }
        if node == target {
            // Reconstruct by walking (node, dir) pairs back to the source.
            let mut path = Vec::new();
            let mut cur = node;
            let mut cur_dir = dir;
            loop {
                path.push((cur % nx, cur / nx));
                if cur_dir == 0 {
                    break;
                }
                let (p, pdir) = parent[cur][usize::from(cur_dir - 1)];
                debug_assert_ne!(p, usize::MAX, "parent chain broken");
                cur = p;
                cur_dir = pdir;
            }
            path.reverse();
            debug_assert_eq!(path.first(), Some(&a));
            return path;
        }
        let (x, y) = (node % nx, node / nx);
        for (dx, dy, nd) in [(-1i64, 0i64, 1u8), (1, 0, 1), (0, -1, 2), (0, 1, 2)] {
            let (tx, ty) = (cast::idx_i64(x) + dx, cast::idx_i64(y) + dy);
            if tx < 0 || ty < 0 || tx >= cast::idx_i64(nx) || ty >= cast::idx_i64(ny) {
                continue;
            }
            let (tx, ty) = (cast::i64_idx(tx), cast::i64_idx(ty));
            let d = if nd == 1 { Dir::H } else { Dir::V };
            let mut step = 0.5 * (grid.cost(x, y, d, 0.5) + grid.cost(tx, ty, d, 0.5));
            if dir != 0 && dir != nd {
                step += grid.bend_cost;
            }
            let ng = g + step;
            let tnode = idx(tx, ty);
            if ng + 1e-12 < dist[tnode][usize::from(nd - 1)] {
                dist[tnode][usize::from(nd - 1)] = ng;
                parent[tnode][usize::from(nd - 1)] = (node, dir);
                heap.push(HeapEntry {
                    f: ng + h(tx, ty),
                    g: ng,
                    node: tnode,
                    dir: nd,
                });
            }
        }
    }
    // Unreachable on a connected grid, but fall back to a pattern route.
    pattern_route(grid, a, b, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;
    use puffer_db::grid::Grid;

    fn grid(cap: f64) -> RoutingGrid {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        RoutingGrid::new(Grid::filled(r, 10, 10, cap), Grid::filled(r, 10, 10, cap))
    }

    fn is_connected(path: &Path) -> bool {
        path.windows(2)
            .all(|w| w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1) == 1)
    }

    #[test]
    fn pattern_route_straight() {
        let g = grid(10.0);
        let p = pattern_route(&g, (2, 3), (7, 3), 4);
        assert_eq!(p.len(), 6);
        assert!(is_connected(&p));
        assert!(p.iter().all(|&(_, y)| y == 3));
    }

    #[test]
    fn pattern_route_l_shape() {
        let g = grid(10.0);
        let p = pattern_route(&g, (1, 1), (5, 6), 0);
        assert!(is_connected(&p));
        assert_eq!(p.first(), Some(&(1, 1)));
        assert_eq!(p.last(), Some(&(5, 6)));
        // Minimal length: manhattan + 1.
        assert_eq!(p.len(), 4 + 5 + 1);
    }

    #[test]
    fn pattern_route_picks_cheaper_l() {
        let mut g = grid(2.0);
        // Congest the bend at (5, 1) heavily.
        for x in 1..=5 {
            g.charge(x, 1, Dir::H, 10.0);
        }
        let p = pattern_route(&g, (1, 1), (5, 6), 0);
        // Should prefer the L through (1, 6).
        assert!(p.contains(&(1, 6)), "path {p:?}");
    }

    #[test]
    fn pattern_route_uses_z_when_both_ls_are_hot() {
        let mut g = grid(2.0);
        // Heat both L bend corners; a Z through the middle stays cool.
        for x in 1..=5 {
            g.charge(x, 1, Dir::H, 10.0); // bottom leg
            g.charge(x, 6, Dir::H, 10.0); // top leg
        }
        let p = pattern_route(&g, (1, 1), (5, 6), 4);
        assert!(is_connected(&p));
        // A Z route has exactly two bends; it must leave row 1 before x=5
        // and join row 6 after x=1, i.e. use some intermediate row fully.
        let intermediate_h = p
            .windows(2)
            .filter(|w| w[0].1 == w[1].1 && w[0].1 != 1 && w[0].1 != 6)
            .count();
        assert!(intermediate_h > 0, "expected a Z-shaped route, got {p:?}");
    }

    #[test]
    fn maze_route_prices_bends() {
        // With a high bend cost and a free grid, the maze route uses a
        // minimal-bend (L-shaped) path.
        let mut g = grid(100.0);
        g.bend_cost = 10.0;
        let p = maze_route(&g, (0, 0), (6, 6));
        let bends = p
            .windows(3)
            .filter(|w| {
                let d1 = w[0].1 == w[1].1;
                let d2 = w[1].1 == w[2].1;
                d1 != d2
            })
            .count();
        assert_eq!(bends, 1, "expected exactly one bend, got {p:?}");
        assert_eq!(p.len(), 13);
    }

    #[test]
    fn apply_and_refund_are_inverse() {
        let mut g = grid(2.0);
        let p = pattern_route(&g, (0, 0), (4, 4), 2);
        apply_path(&mut g, &p, 1.0);
        assert!(g.to_congestion_map().total_demand() > 0.0);
        apply_path(&mut g, &p, -1.0);
        assert_eq!(g.to_congestion_map().total_demand(), 0.0);
    }

    #[test]
    fn maze_route_connects_and_is_minimal_when_free() {
        let g = grid(10.0);
        let p = maze_route(&g, (2, 2), (8, 5));
        assert!(is_connected(&p));
        assert_eq!(p.first(), Some(&(2, 2)));
        assert_eq!(p.last(), Some(&(8, 5)));
        assert_eq!(p.len(), 6 + 3 + 1, "uncongested maze route is shortest");
    }

    #[test]
    fn maze_route_detours_around_congestion() {
        let mut g = grid(1.0);
        // Build a congested wall on column 5, rows 0..8 (gap at 9).
        for y in 0..9 {
            g.charge(5, y, Dir::H, 50.0);
            g.charge(5, y, Dir::V, 50.0);
        }
        let p = maze_route(&g, (2, 2), (8, 2));
        assert!(is_connected(&p));
        assert_eq!(p.last(), Some(&(8, 2)));
        // The shortest path (through the wall) costs > the detour via row 9.
        let through: f64 = 6.0 + 1.0; // would be if free
        assert!(path_cost(&g, &p) > through, "sanity");
        assert!(
            p.iter().any(|&(_, y)| y > 6),
            "expected a detour towards the gap, got {p:?}"
        );
    }

    #[test]
    fn path_overflow_detection() {
        let mut g = grid(1.0);
        let p = pattern_route(&g, (0, 0), (5, 0), 0);
        apply_path(&mut g, &p, 1.0);
        assert!(!path_overflows(&g, &p));
        // Route three more times over the same row: capacity 1 exceeded.
        for _ in 0..3 {
            apply_path(&mut g, &p, 1.0);
        }
        assert!(path_overflows(&g, &p));
    }

    #[test]
    fn degenerate_single_cell_path() {
        let g = grid(1.0);
        assert_eq!(pattern_route(&g, (3, 3), (3, 3), 4), vec![(3, 3)]);
        assert_eq!(maze_route(&g, (3, 3), (3, 3)), vec![(3, 3)]);
        assert_eq!(path_cost(&g, &vec![(3, 3)]), 0.0);
    }
}
