//! Blockage-aware routing-capacity map generation (paper Eq. (8)).
//!
//! Capacity is evaluated per Gcell (not per edge), matching the Gcell-based
//! routing resource model of §II-C: a Gcell's horizontal capacity is the
//! number of horizontal tracks all horizontal layers provide across its
//! height, minus the tracks blocked by macros overlapping the Gcell, minus a
//! uniform power-grid derate.

use puffer_db::cast;
use crate::EstimatorConfig;
use puffer_db::design::Design;
use puffer_db::grid::Grid;
use puffer_db::tech::PreferredDirection;

/// Builds the `(horizontal, vertical)` capacity maps for a design.
///
/// Macros are assumed to block every routing layer except the topmost layer
/// in each direction (the standard over-the-macro routing assumption), so a
/// Gcell fully covered by a macro keeps only its top-layer tracks.
pub fn build_capacity(design: &Design, config: &EstimatorConfig) -> (Grid<f64>, Grid<f64>) {
    let tech = design.tech();
    let region = design.region();
    let gsize = (config.gcell_rows * tech.row_height).max(tech.row_height);
    let nx = cast::trunc_idx((region.width() / gsize).ceil().max(1.0));
    let ny = cast::trunc_idx((region.height() / gsize).ceil().max(1.0));

    let mut h_cap: Grid<f64> = Grid::new(region, nx, ny);
    let mut v_cap: Grid<f64> = Grid::new(region, nx, ny);
    let dy = h_cap.dy();
    let dx = h_cap.dx();

    // Basic capacity: horizontal tracks stack across the Gcell height,
    // vertical tracks across its width.
    let keep = 1.0 - config.power_derate;
    let h_basic = tech.basic_capacity(PreferredDirection::Horizontal, dy) * keep;
    let v_basic = tech.basic_capacity(PreferredDirection::Vertical, dx) * keep;
    h_cap.fill(h_basic);
    v_cap.fill(v_basic);

    // Blocked capacity: per overlapping macro, subtract the tracks of all
    // but the top routing layer in each direction, prorated by overlap.
    let h_layers: Vec<_> = tech.horizontal_layers().collect();
    let v_layers: Vec<_> = tech.vertical_layers().collect();
    let h_blocked_per_len: f64 = h_layers
        .iter()
        .take(h_layers.len().saturating_sub(1))
        .map(|l| 1.0 / l.pitch())
        .sum();
    let v_blocked_per_len: f64 = v_layers
        .iter()
        .take(v_layers.len().saturating_sub(1))
        .map(|l| 1.0 / l.pitch())
        .sum();

    for (_, shape) in design.macro_shapes() {
        let Some((ix_lo, ix_hi, iy_lo, iy_hi)) = h_cap.cells_overlapping(&shape) else {
            continue;
        };
        for iy in iy_lo..=iy_hi {
            for ix in ix_lo..=ix_hi {
                let cell = h_cap.cell_rect(ix, iy);
                let ov = shape.intersection(&cell);
                if ov.area() <= 0.0 {
                    continue;
                }
                // OL_H(b, g): the vertical extent of the overlap scaled by
                // its horizontal coverage — i.e. the blocked horizontal
                // track length.
                let h_fraction = ov.width() / cell.width();
                let v_fraction = ov.height() / cell.height();
                let h_loss = ov.height() * h_blocked_per_len * h_fraction;
                let v_loss = ov.width() * v_blocked_per_len * v_fraction;
                let hc = h_cap.at_mut(ix, iy);
                *hc = (*hc - h_loss).max(0.0);
                let vc = v_cap.at_mut(ix, iy);
                *vc = (*vc - v_loss).max(0.0);
            }
        }
    }
    (h_cap, v_cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::{Point, Rect};
    use puffer_db::netlist::{CellKind, NetlistBuilder};
    use puffer_db::tech::Technology;

    fn empty_design(w: f64, h: f64) -> Design {
        let nl = NetlistBuilder::new().build().unwrap();
        Design::new("t", nl, Technology::default(), Rect::new(0.0, 0.0, w, h)).unwrap()
    }

    fn design_with_macro() -> Design {
        let mut nb = NetlistBuilder::new();
        let m = nb.add_cell("ram", 12.0, 12.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 48.0, 48.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(24.0, 24.0)).unwrap();
        d
    }

    #[test]
    fn uniform_capacity_without_blockages() {
        let d = empty_design(30.0, 30.0);
        let cfg = EstimatorConfig::default();
        let (h, v) = build_capacity(&d, &cfg);
        let h0 = *h.at(0, 0);
        assert!(h0 > 0.0);
        assert!(h.as_slice().iter().all(|&c| (c - h0).abs() < 1e-9));
        let v0 = *v.at(0, 0);
        assert!(v.as_slice().iter().all(|&c| (c - v0).abs() < 1e-9));
    }

    #[test]
    fn capacity_scales_with_derate() {
        let d = empty_design(30.0, 30.0);
        let base = build_capacity(
            &d,
            &EstimatorConfig {
                power_derate: 0.0,
                ..Default::default()
            },
        );
        let derated = build_capacity(
            &d,
            &EstimatorConfig {
                power_derate: 0.5,
                ..Default::default()
            },
        );
        assert!((derated.0.at(0, 0) / base.0.at(0, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn macro_reduces_capacity_under_it() {
        let d = design_with_macro();
        let cfg = EstimatorConfig::default();
        let (h, v) = build_capacity(&d, &cfg);
        let (cx, cy) = h.cell_of(Point::new(24.0, 24.0));
        let (ex, ey) = h.cell_of(Point::new(3.0, 3.0));
        assert!(*h.at(cx, cy) < *h.at(ex, ey));
        assert!(*v.at(cx, cy) < *v.at(ex, ey));
        // But not to zero: the top layer still routes over the macro.
        assert!(*h.at(cx, cy) > 0.0);
        assert!(*v.at(cx, cy) > 0.0);
    }

    #[test]
    fn partial_overlap_blocks_proportionally() {
        let d = design_with_macro();
        let cfg = EstimatorConfig::default();
        let (h, _) = build_capacity(&d, &cfg);
        // A Gcell only partially covered by the macro loses less.
        let (cx, cy) = h.cell_of(Point::new(24.0, 24.0));
        let (px, py) = h.cell_of(Point::new(18.5, 24.0)); // macro edge at 18
        if (px, py) != (cx, cy) {
            assert!(*h.at(px, py) >= *h.at(cx, cy));
        }
    }

    #[test]
    fn capacity_is_never_negative() {
        // Even with huge blockage coverage.
        let mut nb = NetlistBuilder::new();
        let m = nb.add_cell("big", 29.0, 29.0, CellKind::FixedMacro);
        let mut d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 30.0, 30.0),
        )
        .unwrap();
        d.place_macro(m, Point::new(15.0, 15.0)).unwrap();
        let (h, v) = build_capacity(&d, &EstimatorConfig::default());
        assert!(h.as_slice().iter().all(|&c| c >= 0.0));
        assert!(v.as_slice().iter().all(|&c| c >= 0.0));
    }
}
