//! The congestion map and the paper's overflow/congestion quantities.

use puffer_db::cast;
use puffer_db::grid::Grid;

/// Per-Gcell capacity and demand in both routing directions, with the
/// derived quantities of paper Eq. (7) and Eq. (10)–(11).
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    h_cap: Grid<f64>,
    v_cap: Grid<f64>,
    h_dmd: Grid<f64>,
    v_dmd: Grid<f64>,
}

impl CongestionMap {
    /// Assembles a map from its four grids.
    ///
    /// # Panics
    ///
    /// Panics if the grids disagree in shape.
    pub fn new(h_cap: Grid<f64>, v_cap: Grid<f64>, h_dmd: Grid<f64>, v_dmd: Grid<f64>) -> Self {
        assert_eq!(h_cap.nx(), v_cap.nx());
        assert_eq!(h_cap.nx(), h_dmd.nx());
        assert_eq!(h_cap.nx(), v_dmd.nx());
        assert_eq!(h_cap.ny(), v_cap.ny());
        assert_eq!(h_cap.ny(), h_dmd.ny());
        assert_eq!(h_cap.ny(), v_dmd.ny());
        CongestionMap {
            h_cap,
            v_cap,
            h_dmd,
            v_dmd,
        }
    }

    /// Horizontal capacity grid.
    pub fn h_capacity(&self) -> &Grid<f64> {
        &self.h_cap
    }

    /// Vertical capacity grid.
    pub fn v_capacity(&self) -> &Grid<f64> {
        &self.v_cap
    }

    /// Horizontal demand grid.
    pub fn h_demand(&self) -> &Grid<f64> {
        &self.h_dmd
    }

    /// Vertical demand grid.
    pub fn v_demand(&self) -> &Grid<f64> {
        &self.v_dmd
    }

    /// Mutable demand grids `(horizontal, vertical)` — used by the detour
    /// expansion pass.
    pub(crate) fn demand_mut(&mut self) -> (&mut Grid<f64>, &mut Grid<f64>) {
        (&mut self.h_dmd, &mut self.v_dmd)
    }

    /// Grid width in Gcells.
    pub fn nx(&self) -> usize {
        self.h_cap.nx()
    }

    /// Grid height in Gcells.
    pub fn ny(&self) -> usize {
        self.h_cap.ny()
    }

    /// Horizontal overflow of a Gcell: `max(0, Dmd − Cap)` in tracks
    /// (the track-count form of Eq. (7)).
    pub fn overflow_h(&self, ix: usize, iy: usize) -> f64 {
        (self.h_dmd.at(ix, iy) - self.h_cap.at(ix, iy)).max(0.0)
    }

    /// Vertical overflow of a Gcell in tracks.
    pub fn overflow_v(&self, ix: usize, iy: usize) -> f64 {
        (self.v_dmd.at(ix, iy) - self.v_cap.at(ix, iy)).max(0.0)
    }

    /// Signed horizontal congestion of Eq. (11):
    /// `(Dmd − Cap) / max(Cap, 1)`. Negative values mean slack; the paper
    /// deliberately keeps them (§III-B.1).
    pub fn cg_h(&self, ix: usize, iy: usize) -> f64 {
        let cap = *self.h_cap.at(ix, iy);
        (self.h_dmd.at(ix, iy) - cap) / cap.max(1.0)
    }

    /// Signed vertical congestion of Eq. (11).
    pub fn cg_v(&self, ix: usize, iy: usize) -> f64 {
        let cap = *self.v_cap.at(ix, iy);
        (self.v_dmd.at(ix, iy) - cap) / cap.max(1.0)
    }

    /// Combined congestion of Eq. (10): when the horizontal and vertical
    /// congestion have opposite signs, take the max; otherwise their sum.
    pub fn cg(&self, ix: usize, iy: usize) -> f64 {
        let h = self.cg_h(ix, iy);
        let v = self.cg_v(ix, iy);
        if h * v < 0.0 {
            h.max(v)
        } else {
            h + v
        }
    }

    /// Total horizontal overflow ratio: `Σ overflow / Σ capacity` — the
    /// estimator-side analogue of the router-reported HOF.
    ///
    /// The sum runs over the zipped demand/capacity slices in row-major
    /// order — the same accumulation order as the old per-cell index walk
    /// (so the ratio is bit-identical), but in a dependence-free loop LLVM
    /// can vectorize.
    pub fn overflow_ratio_h(&self) -> f64 {
        Self::overflow_ratio(&self.h_dmd, &self.h_cap)
    }

    /// Total vertical overflow ratio.
    pub fn overflow_ratio_v(&self) -> f64 {
        Self::overflow_ratio(&self.v_dmd, &self.v_cap)
    }

    fn overflow_ratio(dmd: &Grid<f64>, cap: &Grid<f64>) -> f64 {
        let total_cap = cap.sum();
        if total_cap <= 0.0 {
            return 0.0;
        }
        let of: f64 = dmd
            .as_slice()
            .iter()
            .zip(cap.as_slice())
            .map(|(d, c)| (d - c).max(0.0))
            .sum();
        of / total_cap
    }

    /// True when `other` holds bit-for-bit identical grids (every capacity
    /// and demand value compared with `to_bits`, so `-0.0 != 0.0` and NaNs
    /// compare by payload). This is the equality the incremental-vs-full
    /// equivalence gates assert — stricter than `==` on f64.
    pub fn bitwise_eq(&self, other: &CongestionMap) -> bool {
        fn bits_eq(a: &Grid<f64>, b: &Grid<f64>) -> bool {
            a.nx() == b.nx()
                && a.ny() == b.ny()
                && a.as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        }
        bits_eq(&self.h_cap, &other.h_cap)
            && bits_eq(&self.v_cap, &other.v_cap)
            && bits_eq(&self.h_dmd, &other.h_dmd)
            && bits_eq(&self.v_dmd, &other.v_dmd)
    }

    /// Sum of demand in both directions (sanity metric).
    pub fn total_demand(&self) -> f64 {
        self.h_dmd.sum() + self.v_dmd.sum()
    }

    /// Number of Gcells with positive overflow in either direction.
    pub fn congested_cells(&self) -> usize {
        (0..self.ny())
            .flat_map(|iy| (0..self.nx()).map(move |ix| (ix, iy)))
            .filter(|&(ix, iy)| self.overflow_h(ix, iy) > 0.0 || self.overflow_v(ix, iy) > 0.0)
            .count()
    }

    /// Renders a direction's utilisation (`demand / capacity`) as an ASCII
    /// heatmap, top row first: ` .:-=+*#%@` from empty to ≥ 2× capacity.
    pub fn render_ascii(&self, horizontal: bool) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let (dmd, cap) = if horizontal {
            (&self.h_dmd, &self.h_cap)
        } else {
            (&self.v_dmd, &self.v_cap)
        };
        let mut out = String::with_capacity((self.nx() + 1) * self.ny());
        for iy in (0..self.ny()).rev() {
            for ix in 0..self.nx() {
                let u = dmd.at(ix, iy) / cap.at(ix, iy).max(1e-9);
                let level = ((u / 2.0) * cast::idx_f64(RAMP.len() - 1))
                    .round()
                    .clamp(0.0, cast::idx_f64(RAMP.len() - 1));
        let level = cast::trunc_idx(level);
                out.push(RAMP[level] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders a direction's utilisation as a binary PGM (P5) grayscale
    /// image, one pixel per Gcell, top row first: black = empty, white =
    /// ≥ 2× capacity. Suitable for direct viewing or conversion to PNG —
    /// the image analogue of the paper's Fig. 5 panels.
    pub fn to_pgm(&self, horizontal: bool) -> Vec<u8> {
        let (dmd, cap) = if horizontal {
            (&self.h_dmd, &self.h_cap)
        } else {
            (&self.v_dmd, &self.v_cap)
        };
        let mut out = format!("P5\n{} {}\n255\n", self.nx(), self.ny()).into_bytes();
        for iy in (0..self.ny()).rev() {
            for ix in 0..self.nx() {
                let u = dmd.at(ix, iy) / cap.at(ix, iy).max(1e-9);
                out.push(cast::round_u8((u / 2.0).clamp(0.0, 1.0) * 255.0));
            }
        }
        out
    }

    /// Serialises a direction's utilisation as CSV (one row per Gcell row,
    /// bottom row first), for the Fig. 5 artifacts.
    pub fn to_csv(&self, horizontal: bool) -> String {
        let (dmd, cap) = if horizontal {
            (&self.h_dmd, &self.h_cap)
        } else {
            (&self.v_dmd, &self.v_cap)
        };
        let mut out = String::new();
        for iy in 0..self.ny() {
            let row: Vec<String> = (0..self.nx())
                .map(|ix| format!("{:.4}", dmd.at(ix, iy) / cap.at(ix, iy).max(1e-9)))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;

    fn map_with(hd: f64, hc: f64, vd: f64, vc: f64) -> CongestionMap {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        CongestionMap::new(
            Grid::filled(r, 2, 2, hc),
            Grid::filled(r, 2, 2, vc),
            Grid::filled(r, 2, 2, hd),
            Grid::filled(r, 2, 2, vd),
        )
    }

    #[test]
    fn overflow_clamps_at_zero() {
        let m = map_with(5.0, 10.0, 12.0, 10.0);
        assert_eq!(m.overflow_h(0, 0), 0.0);
        assert_eq!(m.overflow_v(0, 0), 2.0);
    }

    #[test]
    fn cg_keeps_negative_values() {
        let m = map_with(5.0, 10.0, 12.0, 10.0);
        assert!((m.cg_h(0, 0) - (-0.5)).abs() < 1e-12);
        assert!((m.cg_v(0, 0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cg_combination_follows_eq10() {
        // Opposite signs: take the max.
        let m = map_with(5.0, 10.0, 12.0, 10.0);
        assert!((m.cg(0, 0) - 0.2).abs() < 1e-12);
        // Same sign: sum.
        let m2 = map_with(12.0, 10.0, 15.0, 10.0);
        assert!((m2.cg(0, 0) - (0.2 + 0.5)).abs() < 1e-12);
        let m3 = map_with(5.0, 10.0, 8.0, 10.0);
        assert!((m3.cg(0, 0) - (-0.5 + -0.2)).abs() < 1e-12);
    }

    #[test]
    fn cg_uses_max_with_one_for_tiny_capacity() {
        let m = map_with(0.5, 0.1, 0.0, 0.1);
        // cap 0.1 < 1, so denominator is 1.
        assert!((m.cg_h(0, 0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn overflow_ratios() {
        let m = map_with(12.0, 10.0, 5.0, 10.0);
        assert!((m.overflow_ratio_h() - 0.2).abs() < 1e-12);
        assert_eq!(m.overflow_ratio_v(), 0.0);
        assert_eq!(m.congested_cells(), 4);
    }

    #[test]
    fn bitwise_eq_distinguishes_payloads_equality_misses() {
        let m = map_with(12.0, 10.0, 5.0, 10.0);
        assert!(m.bitwise_eq(&m.clone()));
        let other = map_with(12.0, 10.0, 5.0 + 1e-12, 10.0);
        assert!(!m.bitwise_eq(&other));
        // -0.0 == 0.0 under PartialEq but not under bitwise_eq.
        let zero = map_with(0.0, 10.0, 5.0, 10.0);
        let negzero = map_with(-0.0, 10.0, 5.0, 10.0);
        assert_eq!(zero.h_demand().as_slice(), negzero.h_demand().as_slice());
        assert!(!zero.bitwise_eq(&negzero));
    }

    /// Regression: the slice-based overflow ratio must accumulate in the
    /// same row-major order as the old per-index walk, so the result is
    /// bit-identical (the incremental equivalence gate compares trace
    /// records that embed these ratios).
    #[test]
    fn overflow_ratio_matches_indexed_walk_bitwise() {
        let r = Rect::new(0.0, 0.0, 8.0, 6.0);
        let mut dmd = Grid::new(r, 4, 3);
        let mut cap = Grid::new(r, 4, 3);
        for iy in 0..3 {
            for ix in 0..4 {
                *dmd.at_mut(ix, iy) = (ix * 7 + iy * 13) as f64 * 0.37 + 0.001;
                *cap.at_mut(ix, iy) = (ix + iy) as f64 * 0.9 + 0.5;
            }
        }
        let m = CongestionMap::new(cap.clone(), cap.clone(), dmd.clone(), dmd.clone());
        let total_cap = cap.sum();
        let indexed: f64 = (0..3)
            .flat_map(|iy| (0..4).map(move |ix| (ix, iy)))
            .map(|(ix, iy)| m.overflow_h(ix, iy))
            .sum();
        assert_eq!((indexed / total_cap).to_bits(), m.overflow_ratio_h().to_bits());
    }

    #[test]
    fn ascii_rendering_has_grid_shape() {
        let m = map_with(12.0, 10.0, 5.0, 10.0);
        let art = m.render_ascii(true);
        assert_eq!(art.lines().count(), 2);
        assert!(art.lines().all(|l| l.len() == 2));
        // 120% utilisation should be visibly dark (past the midpoint ramp).
        assert!(art.contains('*') || art.contains('+') || art.contains('#'));
    }

    #[test]
    fn pgm_has_header_and_one_byte_per_gcell() {
        let m = map_with(20.0, 10.0, 0.0, 10.0);
        let pgm = m.to_pgm(true);
        let header = b"P5\n2 2\n255\n";
        assert_eq!(&pgm[..header.len()], header);
        assert_eq!(pgm.len(), header.len() + 4);
        // Utilisation 2.0 saturates to white.
        assert!(pgm[header.len()..].iter().all(|&b| b == 255));
        let empty = m.to_pgm(false);
        assert!(empty[header.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn csv_has_one_value_per_gcell() {
        let m = map_with(1.0, 2.0, 1.0, 2.0);
        let csv = m.to_csv(false);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().all(|l| l.split(',').count() == 2));
        assert!(csv.contains("0.5000"));
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let _ = CongestionMap::new(
            Grid::filled(r, 2, 2, 1.0),
            Grid::filled(r, 3, 2, 1.0),
            Grid::filled(r, 2, 2, 1.0),
            Grid::filled(r, 2, 2, 1.0),
        );
    }
}
