//! Topology-based probabilistic routing demand (paper §III-A.2).
//!
//! Every net is decomposed into two-point nets on its RSMT. "I"-shaped
//! two-point nets deposit one track of demand in each Gcell they pass, in
//! the corresponding direction. "L"-shaped two-point nets spread the demand
//! of the two possible L routes uniformly over their bounding box. A pin
//! penalty adds demand for local nets whose pins land in one Gcell.
//!
//! Pin positions are **quantized to Gcell coordinates before** the RSMT is
//! built (not after, per topology node): the decomposition is then a pure
//! function of the net's pin-Gcell multiset. This is what makes the
//! incremental estimator ([`crate::incremental`]) sound — a net none of
//! whose pins crossed a Gcell boundary has a bit-identical decomposition —
//! and what makes fingerprint-keyed RSMT caching exact. It also removes a
//! boundary-rounding divergence the continuous construction had: a Steiner
//! median of unquantized pin positions could land on the far side of a
//! Gcell edge even when no pin's Gcell changed.

use puffer_db::cast;
use crate::CongestError;
use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;
use puffer_db::netlist::{NetId, Netlist};
use puffer_flute::Topology;

/// One two-point net, recorded in Gcell coordinates for the detour pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Gcell x of endpoint `a`.
    pub ax: usize,
    /// Gcell y of endpoint `a`.
    pub ay: usize,
    /// Gcell x of endpoint `b`.
    pub bx: usize,
    /// Gcell y of endpoint `b`.
    pub by: usize,
    /// Whether endpoint `a` is a Steiner point.
    pub a_steiner: bool,
    /// Whether endpoint `b` is a Steiner point.
    pub b_steiner: bool,
}

/// Geometric class of a two-point net in Gcell space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentShape {
    /// Both endpoints in the same Gcell.
    Local,
    /// Same Gcell row: a horizontal I-shape.
    HorizontalI,
    /// Same Gcell column: a vertical I-shape.
    VerticalI,
    /// Distinct rows and columns: an L-shape.
    Ell,
}

impl SegmentRecord {
    /// Classifies the segment.
    pub fn shape(&self) -> SegmentShape {
        match (self.ax == self.bx, self.ay == self.by) {
            (true, true) => SegmentShape::Local,
            (false, true) => SegmentShape::HorizontalI,
            (true, false) => SegmentShape::VerticalI,
            (false, false) => SegmentShape::Ell,
        }
    }
}

/// Horizontal demand grid, vertical demand grid, and the routed segment
/// records they were accumulated from.
pub type DemandMaps = (Grid<f64>, Grid<f64>, Vec<SegmentRecord>);

/// Builds `(h_demand, v_demand, segments)` for a placement snapshot.
///
/// `template` supplies the Gcell geometry (any capacity map works); demand
/// grids share its region and resolution. Nets are processed on parallel
/// workers via `puffer-par` (`threads`; clamped to `1..=32`) with fixed
/// chunking and an ordered merge, so the result is bit-identical for any
/// thread count.
pub fn build_demand(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    pin_penalty: f64,
    threads: usize,
) -> (Grid<f64>, Grid<f64>, Vec<SegmentRecord>) {
    try_build_demand(design, placement, template, pin_penalty, threads)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_demand`]: a panicking worker thread (e.g. a placement
/// shorter than the netlist indexing out of bounds) is reported as
/// [`CongestError::WorkerPanic`] instead of unwinding through `join()` —
/// puffer-par drains every worker before reporting, since re-raising
/// inside `thread::scope` aborts the process outright when more than one
/// worker panics.
///
/// # Errors
///
/// [`CongestError::WorkerPanic`] with the first worker's panic message.
pub fn try_build_demand(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    pin_penalty: f64,
    threads: usize,
) -> Result<DemandMaps, CongestError> {
    let mut h_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let mut v_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let netlist = design.netlist();
    let mut segments = Vec::new();

    // Chunking, thread clamping, and panic draining all go through
    // puffer-par: fixed net-index chunks, one demand-grid partial per
    // chunk, merged in chunk order (so the result is bit-identical for
    // any thread count).
    let ranges = puffer_par::chunk_ranges(netlist.num_nets());
    let partials = puffer_par::try_map_chunks(netlist.num_nets(), threads, |range| {
        build_chunk_partial(netlist, placement, template, range, None, None)
    })
    .map_err(|e| CongestError::WorkerPanic(e.0))?;
    debug_assert_eq!(partials.len(), ranges.len());
    for part in partials {
        puffer_par::merge_add(h_dmd.as_mut_slice(), part.h.as_slice());
        puffer_par::merge_add(v_dmd.as_mut_slice(), part.v.as_slice());
        segments.extend(part.segs);
    }

    add_pin_penalty(&mut h_dmd, &mut v_dmd, netlist, placement, pin_penalty);

    Ok((h_dmd, v_dmd, segments))
}

/// One chunk's demand partial: the per-chunk grids and segment records the
/// ordered merge consumes. The incremental estimator caches these verbatim
/// — replacing a whole chunk partial (never subtracting individual nets)
/// is what keeps the merged result bit-identical to a from-scratch build.
#[derive(Debug, Clone)]
pub(crate) struct ChunkPartial {
    pub(crate) h: Grid<f64>,
    pub(crate) v: Grid<f64>,
    pub(crate) segs: Vec<SegmentRecord>,
    /// Per-net end offsets into `segs`, one entry per net in the chunk's
    /// range (in net-index order): net `j`'s records are
    /// `segs[net_ends[j-1]..net_ends[j]]`. This is what lets a rebuild
    /// *replay* a clean net's deposits verbatim instead of re-deriving
    /// them.
    pub(crate) net_ends: Vec<u32>,
    /// RSMT cache hits while building this partial (0 without a cache).
    pub(crate) rsmt_hits: u64,
    /// RSMT cache misses while building this partial.
    pub(crate) rsmt_misses: u64,
}

/// Builds the demand partial for the nets in `range` (a `puffer_par` chunk),
/// in net-index order. With a cache, per-net decompositions are served from
/// the fingerprint-keyed LRU; the cache stores exactly what
/// [`decompose_offsets`] returns, so a hit and a miss deposit identical
/// segments.
///
/// With `prev` — the chunk's previous-round partial plus a per-net dirty
/// slice (indexed by `i - range.start`, `true` = pins changed Gcells) — a
/// clean net's absolute segment records are replayed from the previous
/// partial instead of being re-derived: same values deposited in the same
/// order, so the partial is bit-identical to a from-scratch build, but the
/// quantize/sort/fingerprint/FLUTE work is skipped for every unmoved net.
pub(crate) fn build_chunk_partial(
    netlist: &Netlist,
    placement: &Placement,
    template: &Grid<f64>,
    range: std::ops::Range<usize>,
    mut cache: Option<&mut crate::incremental::RsmtCache>,
    prev: Option<(&ChunkPartial, &[bool])>,
) -> ChunkPartial {
    let mut part = ChunkPartial {
        h: Grid::new(template.region(), template.nx(), template.ny()),
        v: Grid::new(template.region(), template.nx(), template.ny()),
        segs: Vec::new(),
        net_ends: Vec::with_capacity(range.len()),
        rsmt_hits: 0,
        rsmt_misses: 0,
    };
    let mut offsets: Vec<(u32, u32)> = Vec::with_capacity(16);
    for i in range.clone() {
        let local = i - range.start;
        if let Some((prev_part, dirty)) = prev {
            if !dirty[local] {
                // Clean net: replay last round's records verbatim.
                let lo = if local == 0 {
                    0
                } else {
                    cast::u32_idx(prev_part.net_ends[local - 1])
                };
                let hi = cast::u32_idx(prev_part.net_ends[local]);
                for rec in &prev_part.segs[lo..hi] {
                    deposit(&mut part.h, &mut part.v, rec);
                }
                part.segs.extend_from_slice(&prev_part.segs[lo..hi]);
                part.net_ends.push(cast::idx_u32(part.segs.len()));
                continue;
            }
        }
        let net_id = NetId(cast::idx_u32(i));
        if netlist.net_degree(net_id) < 2 {
            part.net_ends.push(cast::idx_u32(part.segs.len()));
            continue;
        }
        let Some((base_x, base_y)) = net_offsets(netlist, placement, template, net_id, &mut offsets)
        else {
            part.net_ends.push(cast::idx_u32(part.segs.len()));
            continue;
        };
        let mut emit = |rec: &SegmentRecord| {
            let abs = SegmentRecord {
                ax: rec.ax + base_x,
                ay: rec.ay + base_y,
                bx: rec.bx + base_x,
                by: rec.by + base_y,
                a_steiner: rec.a_steiner,
                b_steiner: rec.b_steiner,
            };
            deposit(&mut part.h, &mut part.v, &abs);
            part.segs.push(abs);
        };
        match cache.as_deref_mut() {
            Some(cache) => {
                let (recs, hit) = cache.get_or_build(&offsets);
                if hit {
                    part.rsmt_hits += 1;
                } else {
                    part.rsmt_misses += 1;
                }
                for rec in recs.iter() {
                    emit(rec);
                }
            }
            None => {
                for rec in decompose_offsets(&offsets) {
                    emit(&rec);
                }
            }
        }
        part.net_ends.push(cast::idx_u32(part.segs.len()));
    }
    part
}

/// Quantizes a net's pins to Gcells and rewrites `offsets` as the net's
/// **fingerprint**: pin Gcells relative to the net bounding-box minimum,
/// sorted and deduplicated. Returns the bbox minimum (the translation that
/// maps offsets back to absolute Gcells), or `None` for a pinless net.
pub(crate) fn net_offsets(
    netlist: &Netlist,
    placement: &Placement,
    template: &Grid<f64>,
    net_id: NetId,
    offsets: &mut Vec<(u32, u32)>,
) -> Option<(usize, usize)> {
    offsets.clear();
    for &pid in netlist.net_pins(net_id) {
        let (ix, iy) = template.cell_of(placement.pin_pos(netlist, pid));
        offsets.push((cast::idx_u32(ix), cast::idx_u32(iy)));
    }
    let base_x = offsets.iter().map(|c| c.0).min()?;
    let base_y = offsets.iter().map(|c| c.1).min()?;
    for c in offsets.iter_mut() {
        c.0 -= base_x;
        c.1 -= base_y;
    }
    offsets.sort_unstable();
    offsets.dedup();
    Some((cast::u32_idx(base_x), cast::u32_idx(base_y)))
}

/// Canonical RSMT decomposition of a fingerprint, as segment records in
/// offset space. Built from the sorted, deduplicated offsets (see
/// [`Topology::from_gcells`]), so any pin order of the same Gcell multiset
/// yields the identical record list — the soundness condition for caching.
pub(crate) fn decompose_offsets(offsets: &[(u32, u32)]) -> Vec<SegmentRecord> {
    let topo = Topology::from_gcells(offsets);
    topo.segments()
        .iter()
        .map(|seg| {
            let na = topo.nodes()[seg.a];
            let nb = topo.nodes()[seg.b];
            SegmentRecord {
                ax: cast::trunc_idx(na.pos.x),
                ay: cast::trunc_idx(na.pos.y),
                bx: cast::trunc_idx(nb.pos.x),
                by: cast::trunc_idx(nb.pos.y),
                a_steiner: na.kind.is_steiner(),
                b_steiner: nb.kind.is_steiner(),
            }
        })
        .collect()
}

/// Pin penalty: local-net demand at every pin's Gcell, in pin-index order.
pub(crate) fn add_pin_penalty(
    h_dmd: &mut Grid<f64>,
    v_dmd: &mut Grid<f64>,
    netlist: &Netlist,
    placement: &Placement,
    pin_penalty: f64,
) {
    if pin_penalty > 0.0 {
        for i in 0..netlist.num_pins() {
            let pid = puffer_db::netlist::PinId(cast::idx_u32(i));
            let pos = placement.pin_pos(netlist, pid);
            let (ix, iy) = h_dmd.cell_of(pos);
            *h_dmd.at_mut(ix, iy) += pin_penalty;
            *v_dmd.at_mut(ix, iy) += pin_penalty;
        }
    }
}

/// Deposits one segment's probabilistic demand into the grids.
pub(crate) fn deposit(h_dmd: &mut Grid<f64>, v_dmd: &mut Grid<f64>, rec: &SegmentRecord) {
    let (x0, x1) = (rec.ax.min(rec.bx), rec.ax.max(rec.bx));
    let (y0, y1) = (rec.ay.min(rec.by), rec.ay.max(rec.by));
    // Row-slice inner loops: the per-cell adds (values and order per grid
    // cell) are identical to indexed `at_mut` walks, but contiguous slices
    // let LLVM vectorize the row bodies and hoist the bounds checks.
    let nx = h_dmd.nx();
    match rec.shape() {
        SegmentShape::Local => {}
        SegmentShape::HorizontalI => {
            let row = rec.ay * nx;
            for c in &mut h_dmd.as_mut_slice()[row + x0..=row + x1] {
                *c += 1.0;
            }
        }
        SegmentShape::VerticalI => {
            let data = v_dmd.as_mut_slice();
            let mut i = y0 * nx + rec.ax;
            for _ in y0..=y1 {
                data[i] += 1.0;
                i += nx;
            }
        }
        SegmentShape::Ell => {
            // Average of the two L routes: horizontal demand 1/nrows per
            // bbox Gcell, vertical demand 1/ncols per bbox Gcell.
            let nrows = cast::idx_f64(y1 - y0 + 1);
            let ncols = cast::idx_f64(x1 - x0 + 1);
            let h_share = 1.0 / nrows;
            let v_share = 1.0 / ncols;
            let h = h_dmd.as_mut_slice();
            let v = v_dmd.as_mut_slice();
            for y in y0..=y1 {
                let row = y * nx;
                for c in &mut h[row + x0..=row + x1] {
                    *c += h_share;
                }
                for c in &mut v[row + x0..=row + x1] {
                    *c += v_share;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::{Point, Rect};

    fn grids() -> (Grid<f64>, Grid<f64>) {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        (Grid::new(r, 10, 10), Grid::new(r, 10, 10))
    }

    #[test]
    fn horizontal_i_deposits_unit_track() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 2,
            ay: 5,
            bx: 6,
            by: 5,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::HorizontalI);
        deposit(&mut h, &mut v, &rec);
        for x in 2..=6 {
            assert_eq!(*h.at(x, 5), 1.0);
        }
        assert_eq!(h.sum(), 5.0);
        assert_eq!(v.sum(), 0.0);
    }

    #[test]
    fn vertical_i_deposits_unit_track() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 3,
            ay: 8,
            bx: 3,
            by: 4,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::VerticalI);
        deposit(&mut h, &mut v, &rec);
        assert_eq!(v.sum(), 5.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn ell_spreads_average_demand() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 1,
            ay: 1,
            bx: 4,
            by: 3,
            a_steiner: false,
            b_steiner: true,
        };
        assert_eq!(rec.shape(), SegmentShape::Ell);
        deposit(&mut h, &mut v, &rec);
        // Total horizontal demand equals the horizontal crossing count (4
        // columns), total vertical equals 3 rows.
        assert!((h.sum() - 4.0).abs() < 1e-9);
        assert!((v.sum() - 3.0).abs() < 1e-9);
        // Uniform inside the bbox.
        assert!((*h.at(1, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((*v.at(4, 3) - 1.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_segment_deposits_nothing() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 5,
            ay: 5,
            bx: 5,
            by: 5,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::Local);
        deposit(&mut h, &mut v, &rec);
        assert_eq!(h.sum() + v.sum(), 0.0);
    }

    #[test]
    fn build_demand_adds_pin_penalty() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        use puffer_db::tech::Technology;
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let mut p = Placement::zeroed(2);
        p.set(a, Point::new(2.5, 2.5));
        p.set(b, Point::new(12.5, 2.5));
        let template: Grid<f64> = Grid::new(d.region(), 4, 4);
        let (h, v, segs) = build_demand(&d, &p, &template, 0.25, 2);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].shape(), SegmentShape::HorizontalI);
        // 3 Gcells crossed horizontally (columns 0..=2 at 5-unit pitch) plus
        // two pin penalties.
        assert!((h.sum() - (3.0 + 0.5)).abs() < 1e-9);
        assert!((v.sum() - 0.5).abs() < 1e-9);
    }

    /// Regression: cells sitting exactly on a Gcell edge must bin
    /// identically in every path. `Grid::cell_of` bins an on-edge point up
    /// into the next cell (clamped at the boundary); because pins are
    /// quantized **before** the RSMT is built, the full build, the
    /// incremental rebuild, and the fingerprint all see the same bin — there
    /// is no second rounding site left to disagree.
    #[test]
    fn on_edge_pins_bin_identically_in_fingerprint_and_deposit() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        use puffer_db::tech::Technology;
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let template: Grid<f64> = Grid::new(d.region(), 4, 4);
        // Gcell pitch is 5.0; x = 5.0 and x = 10.0 sit exactly on edges.
        let mut p = Placement::zeroed(2);
        p.set(a, Point::new(5.0, 10.0));
        p.set(b, Point::new(10.0, 10.0));
        let netlist = d.netlist();
        let mut offsets = Vec::new();
        let (bx, by) =
            net_offsets(netlist, &p, &template, NetId(0), &mut offsets).unwrap();
        // cell_of bins the on-edge coordinate up: x=5 → column 1, x=10 →
        // column 2, y=10 → row 2.
        assert_eq!((bx, by), (1, 2));
        assert_eq!(offsets, vec![(0, 0), (1, 0)]);
        // The deposited segment endpoints agree with cell_of exactly.
        let (_, _, segs) = build_demand(&d, &p, &template, 0.0, 1);
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].ax, segs[0].ay), (1, 2));
        assert_eq!((segs[0].bx, segs[0].by), (2, 2));
        // And the pin-penalty pass (which calls cell_of independently) puts
        // its demand in the same Gcells as the fingerprint says.
        let (h, _, _) = build_demand(&d, &p, &template, 1.0, 1);
        assert!(*h.at(1, 2) >= 1.0 && *h.at(2, 2) >= 1.0);
    }

    /// Regression guard for the f64 accumulation-order drift an
    /// subtract-then-re-add incremental scheme would exhibit: `(a + b) - b`
    /// is not `a` in floating point, so an incremental path that subtracted
    /// stale demand would drift from the full build. The shipped scheme
    /// replaces whole chunk partials and re-merges in chunk order instead —
    /// this test documents the failure mode and pins the invariant the
    /// equivalence tests rely on.
    #[test]
    fn subtract_then_re_add_drifts_but_chunk_replacement_does_not() {
        // The drift itself: catastrophic cancellation.
        let a = 0.1_f64;
        let b = 1.0e16_f64;
        assert_ne!(((a + b) - b).to_bits(), a.to_bits());
        // Chunk replacement: re-merging the same partials in the same order
        // reproduces the sum bit-for-bit.
        let partials = [vec![0.1, 0.2], vec![1.0e16, -1.0], vec![0.3, 0.7]];
        let merge = |parts: &[Vec<f64>]| {
            let mut acc = vec![0.0_f64; 2];
            for p in parts {
                puffer_par::merge_add(&mut acc, p);
            }
            acc
        };
        let first = merge(&partials);
        // "Rebuild" chunk 1 (identical content, as for a clean chunk) and
        // re-merge from scratch.
        let second = merge(&[partials[0].clone(), partials[1].clone(), partials[2].clone()]);
        for (x, y) in first.iter().zip(&second) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn demand_is_identical_for_any_thread_count() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 300,
            num_nets: 340,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let p = d.initial_placement();
        let template: Grid<f64> = Grid::new(d.region(), 12, 12);
        let (h1, v1, s1) = build_demand(&d, &p, &template, 0.1, 1);
        let (h8, v8, s8) = build_demand(&d, &p, &template, 0.1, 8);
        assert_eq!(s1, s8);
        for (a, b) in h1.as_slice().iter().zip(h8.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in v1.as_slice().iter().zip(v8.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn panicking_workers_become_an_error_not_an_abort() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 200,
            num_nets: 220,
            ..GeneratorConfig::default()
        })
        .unwrap();
        // A placement shorter than the netlist makes every worker index out
        // of bounds; with 4 workers this used to abort the process (first
        // `join().expect` re-panicked while other panicked handles were
        // still pending in the scope).
        let short = Placement::zeroed(1);
        let template: Grid<f64> = Grid::new(d.region(), 8, 8);
        let err = try_build_demand(&d, &short, &template, 0.0, 4).unwrap_err();
        assert!(matches!(err, CongestError::WorkerPanic(_)), "{err}");
        assert!(err.to_string().contains("worker"), "{err}");
    }

    #[test]
    fn zero_pin_penalty_skips_pass() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        use puffer_db::tech::Technology;
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let template: Grid<f64> = Grid::new(d.region(), 4, 4);
        let (h, v, _) = build_demand(&d, &Placement::zeroed(1), &template, 0.0, 2);
        assert_eq!(h.sum() + v.sum(), 0.0);
    }
}
