//! Topology-based probabilistic routing demand (paper §III-A.2).
//!
//! Every net is decomposed into two-point nets on its RSMT. "I"-shaped
//! two-point nets deposit one track of demand in each Gcell they pass, in
//! the corresponding direction. "L"-shaped two-point nets spread the demand
//! of the two possible L routes uniformly over their bounding box. A pin
//! penalty adds demand for local nets whose pins land in one Gcell.

use crate::CongestError;
use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;
use puffer_flute::Topology;

/// One two-point net, recorded in Gcell coordinates for the detour pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Gcell x of endpoint `a`.
    pub ax: usize,
    /// Gcell y of endpoint `a`.
    pub ay: usize,
    /// Gcell x of endpoint `b`.
    pub bx: usize,
    /// Gcell y of endpoint `b`.
    pub by: usize,
    /// Whether endpoint `a` is a Steiner point.
    pub a_steiner: bool,
    /// Whether endpoint `b` is a Steiner point.
    pub b_steiner: bool,
}

/// Geometric class of a two-point net in Gcell space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentShape {
    /// Both endpoints in the same Gcell.
    Local,
    /// Same Gcell row: a horizontal I-shape.
    HorizontalI,
    /// Same Gcell column: a vertical I-shape.
    VerticalI,
    /// Distinct rows and columns: an L-shape.
    Ell,
}

impl SegmentRecord {
    /// Classifies the segment.
    pub fn shape(&self) -> SegmentShape {
        match (self.ax == self.bx, self.ay == self.by) {
            (true, true) => SegmentShape::Local,
            (false, true) => SegmentShape::HorizontalI,
            (true, false) => SegmentShape::VerticalI,
            (false, false) => SegmentShape::Ell,
        }
    }
}

/// Horizontal demand grid, vertical demand grid, and the routed segment
/// records they were accumulated from.
pub type DemandMaps = (Grid<f64>, Grid<f64>, Vec<SegmentRecord>);

/// Builds `(h_demand, v_demand, segments)` for a placement snapshot.
///
/// `template` supplies the Gcell geometry (any capacity map works); demand
/// grids share its region and resolution. Nets are processed on parallel
/// workers via `puffer-par` (`threads`; clamped to `1..=32`) with fixed
/// chunking and an ordered merge, so the result is bit-identical for any
/// thread count.
pub fn build_demand(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    pin_penalty: f64,
    threads: usize,
) -> (Grid<f64>, Grid<f64>, Vec<SegmentRecord>) {
    try_build_demand(design, placement, template, pin_penalty, threads)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`build_demand`]: a panicking worker thread (e.g. a placement
/// shorter than the netlist indexing out of bounds) is reported as
/// [`CongestError::WorkerPanic`] instead of unwinding through `join()` —
/// puffer-par drains every worker before reporting, since re-raising
/// inside `thread::scope` aborts the process outright when more than one
/// worker panics.
///
/// # Errors
///
/// [`CongestError::WorkerPanic`] with the first worker's panic message.
pub fn try_build_demand(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    pin_penalty: f64,
    threads: usize,
) -> Result<DemandMaps, CongestError> {
    let mut h_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let mut v_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let netlist = design.netlist();
    let mut segments = Vec::new();

    // Chunking, thread clamping, and panic draining all go through
    // puffer-par: fixed net-index chunks, one demand-grid partial per
    // chunk, merged in chunk order (so the result is bit-identical for
    // any thread count).
    let net_ids: Vec<_> = netlist.iter_nets().map(|(id, _)| id).collect();
    let partials = puffer_par::try_map_chunks(net_ids.len(), threads, |range| {
        let mut h: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
        let mut v: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
        let mut segs = Vec::new();
        for i in range {
            let net_id = net_ids[i];
            if netlist.net(net_id).degree() < 2 {
                continue;
            }
            let topo = Topology::for_net(netlist, placement, net_id);
            for seg in topo.segments() {
                let na = topo.nodes()[seg.a];
                let nb = topo.nodes()[seg.b];
                let (ax, ay) = h.cell_of(na.pos);
                let (bx, by) = h.cell_of(nb.pos);
                let rec = SegmentRecord {
                    ax,
                    ay,
                    bx,
                    by,
                    a_steiner: na.kind.is_steiner(),
                    b_steiner: nb.kind.is_steiner(),
                };
                deposit(&mut h, &mut v, &rec);
                segs.push(rec);
            }
        }
        (h, v, segs)
    })
    .map_err(|e| CongestError::WorkerPanic(e.0))?;
    for (h, v, segs) in partials {
        puffer_par::merge_add(h_dmd.as_mut_slice(), h.as_slice());
        puffer_par::merge_add(v_dmd.as_mut_slice(), v.as_slice());
        segments.extend(segs);
    }

    // Pin penalty: local-net demand at every pin's Gcell.
    if pin_penalty > 0.0 {
        for i in 0..netlist.num_pins() {
            let pid = puffer_db::netlist::PinId(i as u32);
            let pos = placement.pin_pos(netlist, pid);
            let (ix, iy) = h_dmd.cell_of(pos);
            *h_dmd.at_mut(ix, iy) += pin_penalty;
            *v_dmd.at_mut(ix, iy) += pin_penalty;
        }
    }

    Ok((h_dmd, v_dmd, segments))
}

/// Deposits one segment's probabilistic demand into the grids.
pub(crate) fn deposit(h_dmd: &mut Grid<f64>, v_dmd: &mut Grid<f64>, rec: &SegmentRecord) {
    let (x0, x1) = (rec.ax.min(rec.bx), rec.ax.max(rec.bx));
    let (y0, y1) = (rec.ay.min(rec.by), rec.ay.max(rec.by));
    match rec.shape() {
        SegmentShape::Local => {}
        SegmentShape::HorizontalI => {
            let y = rec.ay;
            for x in x0..=x1 {
                *h_dmd.at_mut(x, y) += 1.0;
            }
        }
        SegmentShape::VerticalI => {
            let x = rec.ax;
            for y in y0..=y1 {
                *v_dmd.at_mut(x, y) += 1.0;
            }
        }
        SegmentShape::Ell => {
            // Average of the two L routes: horizontal demand 1/nrows per
            // bbox Gcell, vertical demand 1/ncols per bbox Gcell.
            let nrows = (y1 - y0 + 1) as f64;
            let ncols = (x1 - x0 + 1) as f64;
            let h_share = 1.0 / nrows;
            let v_share = 1.0 / ncols;
            for y in y0..=y1 {
                for x in x0..=x1 {
                    *h_dmd.at_mut(x, y) += h_share;
                    *v_dmd.at_mut(x, y) += v_share;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::{Point, Rect};

    fn grids() -> (Grid<f64>, Grid<f64>) {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        (Grid::new(r, 10, 10), Grid::new(r, 10, 10))
    }

    #[test]
    fn horizontal_i_deposits_unit_track() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 2,
            ay: 5,
            bx: 6,
            by: 5,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::HorizontalI);
        deposit(&mut h, &mut v, &rec);
        for x in 2..=6 {
            assert_eq!(*h.at(x, 5), 1.0);
        }
        assert_eq!(h.sum(), 5.0);
        assert_eq!(v.sum(), 0.0);
    }

    #[test]
    fn vertical_i_deposits_unit_track() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 3,
            ay: 8,
            bx: 3,
            by: 4,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::VerticalI);
        deposit(&mut h, &mut v, &rec);
        assert_eq!(v.sum(), 5.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn ell_spreads_average_demand() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 1,
            ay: 1,
            bx: 4,
            by: 3,
            a_steiner: false,
            b_steiner: true,
        };
        assert_eq!(rec.shape(), SegmentShape::Ell);
        deposit(&mut h, &mut v, &rec);
        // Total horizontal demand equals the horizontal crossing count (4
        // columns), total vertical equals 3 rows.
        assert!((h.sum() - 4.0).abs() < 1e-9);
        assert!((v.sum() - 3.0).abs() < 1e-9);
        // Uniform inside the bbox.
        assert!((*h.at(1, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((*v.at(4, 3) - 1.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_segment_deposits_nothing() {
        let (mut h, mut v) = grids();
        let rec = SegmentRecord {
            ax: 5,
            ay: 5,
            bx: 5,
            by: 5,
            a_steiner: false,
            b_steiner: false,
        };
        assert_eq!(rec.shape(), SegmentShape::Local);
        deposit(&mut h, &mut v, &rec);
        assert_eq!(h.sum() + v.sum(), 0.0);
    }

    #[test]
    fn build_demand_adds_pin_penalty() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        use puffer_db::tech::Technology;
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let b = nb.add_cell("b", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        nb.connect(n, b, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let mut p = Placement::zeroed(2);
        p.set(a, Point::new(2.5, 2.5));
        p.set(b, Point::new(12.5, 2.5));
        let template: Grid<f64> = Grid::new(d.region(), 4, 4);
        let (h, v, segs) = build_demand(&d, &p, &template, 0.25, 2);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].shape(), SegmentShape::HorizontalI);
        // 3 Gcells crossed horizontally (columns 0..=2 at 5-unit pitch) plus
        // two pin penalties.
        assert!((h.sum() - (3.0 + 0.5)).abs() < 1e-9);
        assert!((v.sum() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn demand_is_identical_for_any_thread_count() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 300,
            num_nets: 340,
            ..GeneratorConfig::default()
        })
        .unwrap();
        let p = d.initial_placement();
        let template: Grid<f64> = Grid::new(d.region(), 12, 12);
        let (h1, v1, s1) = build_demand(&d, &p, &template, 0.1, 1);
        let (h8, v8, s8) = build_demand(&d, &p, &template, 0.1, 8);
        assert_eq!(s1, s8);
        for (a, b) in h1.as_slice().iter().zip(h8.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in v1.as_slice().iter().zip(v8.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn panicking_workers_become_an_error_not_an_abort() {
        use puffer_gen::{generate, GeneratorConfig};
        let d = generate(&GeneratorConfig {
            num_cells: 200,
            num_nets: 220,
            ..GeneratorConfig::default()
        })
        .unwrap();
        // A placement shorter than the netlist makes every worker index out
        // of bounds; with 4 workers this used to abort the process (first
        // `join().expect` re-panicked while other panicked handles were
        // still pending in the scope).
        let short = Placement::zeroed(1);
        let template: Grid<f64> = Grid::new(d.region(), 8, 8);
        let err = try_build_demand(&d, &short, &template, 0.0, 4).unwrap_err();
        assert!(matches!(err, CongestError::WorkerPanic(_)), "{err}");
        assert!(err.to_string().contains("worker"), "{err}");
    }

    #[test]
    fn zero_pin_penalty_skips_pass() {
        use puffer_db::netlist::{CellKind, NetlistBuilder};
        use puffer_db::tech::Technology;
        let mut nb = NetlistBuilder::new();
        let a = nb.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = nb.add_net("n");
        nb.connect(n, a, Point::ORIGIN).unwrap();
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 20.0, 20.0),
        )
        .unwrap();
        let template: Grid<f64> = Grid::new(d.region(), 4, 4);
        let (h, v, _) = build_demand(&d, &Placement::zeroed(1), &template, 0.0, 2);
        assert_eq!(h.sum() + v.sum(), 0.0);
    }
}
