//! Detour-imitating routing-demand expansion (paper §III-A.3).
//!
//! In global placement, cells cluster, so raw probabilistic demand piles up
//! in a few Gcells. Rather than reacting by spreading cells (which
//! destabilises the electrostatic system), the estimator *expands* the
//! demand of congested I-shaped two-point nets into neighbouring rows or
//! columns with spare capacity:
//!
//! * if a segment endpoint is a **Steiner point**, the rerouted wire still
//!   has to connect back to the trunk, so perpendicular connection demand is
//!   added at that end — imitating a routing detour;
//! * if the endpoint is a **pin**, the owning cell can simply move with the
//!   expansion, so no extra demand is added — imitating cell spreading.

use puffer_db::cast;
use crate::demand::{SegmentRecord, SegmentShape};
use crate::map::CongestionMap;
use crate::EstimatorConfig;

/// Expands congested I-shaped segments in `map` according to `config`.
///
/// The pass is deterministic and single-sweep: segments are inspected in
/// their recorded order against the evolving demand map, matching the
/// incremental behaviour of the paper's estimator.
pub fn expand(map: &mut CongestionMap, segments: &[SegmentRecord], config: &EstimatorConfig) {
    if config.expansion_radius == 0 || config.expansion_strength <= 0.0 {
        return;
    }
    for rec in segments {
        match rec.shape() {
            SegmentShape::HorizontalI => expand_horizontal(map, rec, config),
            SegmentShape::VerticalI => expand_vertical(map, rec, config),
            _ => {}
        }
    }
}

fn expand_horizontal(map: &mut CongestionMap, rec: &SegmentRecord, config: &EstimatorConfig) {
    let (x0, x1) = (rec.ax.min(rec.bx), rec.ax.max(rec.bx));
    let y = rec.ay;
    let ny = map.ny();

    // Congested? Use the worst overflow along the crossed cells.
    let worst = (x0..=x1).map(|x| map.overflow_h(x, y)).fold(0.0, f64::max);
    if worst <= 0.0 {
        return;
    }
    // Move at most the segment's own contribution (1 track), scaled by the
    // configured strength.
    let movable = config.expansion_strength.min(1.0);

    // Candidate rows by |offset|, nearest first; weight by available slack.
    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for k in 1..=config.expansion_radius {
        for dir in [-1i64, 1i64] {
            let yy = cast::idx_i64(y) + dir * cast::idx_i64(k);
            if yy < 0 || yy >= cast::idx_i64(ny) {
                continue;
            }
            let yy = cast::i64_idx(yy);
            let slack: f64 = (x0..=x1)
                .map(|x| (map.h_capacity().at(x, yy) - map.h_demand().at(x, yy)).max(0.0))
                .sum();
            if slack > 0.0 {
                candidates.push((yy, slack));
            }
        }
    }
    let total_slack: f64 = candidates.iter().map(|(_, s)| s).sum();
    if total_slack <= 0.0 {
        return;
    }

    let span = cast::idx_f64(x1 - x0 + 1);
    for (yy, slack) in candidates {
        // Share of the moved demand this row absorbs, capped by its slack.
        let share = movable * (slack / total_slack);
        let absorbed = share.min(slack / span.max(1.0));
        if absorbed <= 0.0 {
            continue;
        }
        let (h_dmd, v_dmd) = map.demand_mut();
        for x in x0..=x1 {
            *h_dmd.at_mut(x, y) -= absorbed;
            *h_dmd.at_mut(x, yy) += absorbed;
        }
        // Perpendicular connection demand at Steiner endpoints: the detour
        // path must rejoin the trunk (paper Fig. 3(c)).
        let (ylo, yhi) = (y.min(yy), y.max(yy));
        if rec.a_steiner {
            for yc in ylo..=yhi {
                *v_dmd.at_mut(rec.ax, yc) += absorbed;
            }
        }
        if rec.b_steiner {
            for yc in ylo..=yhi {
                *v_dmd.at_mut(rec.bx, yc) += absorbed;
            }
        }
    }
}

fn expand_vertical(map: &mut CongestionMap, rec: &SegmentRecord, config: &EstimatorConfig) {
    let (y0, y1) = (rec.ay.min(rec.by), rec.ay.max(rec.by));
    let x = rec.ax;
    let nx = map.nx();

    let worst = (y0..=y1).map(|y| map.overflow_v(x, y)).fold(0.0, f64::max);
    if worst <= 0.0 {
        return;
    }
    let movable = config.expansion_strength.min(1.0);

    let mut candidates: Vec<(usize, f64)> = Vec::new();
    for k in 1..=config.expansion_radius {
        for dir in [-1i64, 1i64] {
            let xx = cast::idx_i64(x) + dir * cast::idx_i64(k);
            if xx < 0 || xx >= cast::idx_i64(nx) {
                continue;
            }
            let xx = cast::i64_idx(xx);
            let slack: f64 = (y0..=y1)
                .map(|y| (map.v_capacity().at(xx, y) - map.v_demand().at(xx, y)).max(0.0))
                .sum();
            if slack > 0.0 {
                candidates.push((xx, slack));
            }
        }
    }
    let total_slack: f64 = candidates.iter().map(|(_, s)| s).sum();
    if total_slack <= 0.0 {
        return;
    }

    let span = cast::idx_f64(y1 - y0 + 1);
    for (xx, slack) in candidates {
        let share = movable * (slack / total_slack);
        let absorbed = share.min(slack / span.max(1.0));
        if absorbed <= 0.0 {
            continue;
        }
        let (h_dmd, v_dmd) = map.demand_mut();
        for y in y0..=y1 {
            *v_dmd.at_mut(x, y) -= absorbed;
            *v_dmd.at_mut(xx, y) += absorbed;
        }
        let (xlo, xhi) = (x.min(xx), x.max(xx));
        if rec.a_steiner {
            for xc in xlo..=xhi {
                *h_dmd.at_mut(xc, rec.ay) += absorbed;
            }
        }
        if rec.b_steiner {
            for xc in xlo..=xhi {
                *h_dmd.at_mut(xc, rec.by) += absorbed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_db::geom::Rect;
    use puffer_db::grid::Grid;

    fn congested_map() -> CongestionMap {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let h_cap = Grid::filled(r, 8, 8, 2.0);
        let v_cap = Grid::filled(r, 8, 8, 2.0);
        let mut h_dmd: Grid<f64> = Grid::new(r, 8, 8);
        // Row 4, columns 1..=5 heavily over capacity.
        for x in 1..=5 {
            *h_dmd.at_mut(x, 4) = 5.0;
        }
        let v_dmd: Grid<f64> = Grid::new(r, 8, 8);
        CongestionMap::new(h_cap, v_cap, h_dmd, v_dmd)
    }

    fn seg(a_steiner: bool, b_steiner: bool) -> SegmentRecord {
        SegmentRecord {
            ax: 1,
            ay: 4,
            bx: 5,
            by: 4,
            a_steiner,
            b_steiner,
        }
    }

    #[test]
    fn expansion_moves_demand_to_neighbours() {
        let mut m = congested_map();
        let before_row4: f64 = (1..=5).map(|x| *m.h_demand().at(x, 4)).sum();
        expand(&mut m, &[seg(false, false)], &EstimatorConfig::default());
        let after_row4: f64 = (1..=5).map(|x| *m.h_demand().at(x, 4)).sum();
        assert!(after_row4 < before_row4);
        let neighbours: f64 = (1..=5)
            .map(|x| *m.h_demand().at(x, 3) + *m.h_demand().at(x, 5))
            .sum();
        assert!(neighbours > 0.0);
    }

    #[test]
    fn horizontal_expansion_conserves_h_mass_for_pin_endpoints() {
        let mut m = congested_map();
        let before = m.h_demand().sum();
        expand(&mut m, &[seg(false, false)], &EstimatorConfig::default());
        assert!((m.h_demand().sum() - before).abs() < 1e-9);
        // Pin endpoints: no perpendicular demand added.
        assert_eq!(m.v_demand().sum(), 0.0);
    }

    #[test]
    fn steiner_endpoints_add_detour_demand() {
        let mut m = congested_map();
        expand(&mut m, &[seg(true, false)], &EstimatorConfig::default());
        // Detour legs appear in the vertical map at the Steiner end column.
        assert!(m.v_demand().sum() > 0.0);
        let col1: f64 = (0..8).map(|y| *m.v_demand().at(1, y)).sum();
        let col5: f64 = (0..8).map(|y| *m.v_demand().at(5, y)).sum();
        assert!(col1 > 0.0);
        assert_eq!(col5, 0.0);
    }

    #[test]
    fn uncongested_segments_are_untouched() {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let mut m = CongestionMap::new(
            Grid::filled(r, 8, 8, 10.0),
            Grid::filled(r, 8, 8, 10.0),
            Grid::filled(r, 8, 8, 1.0),
            Grid::filled(r, 8, 8, 1.0),
        );
        let before = m.clone();
        expand(&mut m, &[seg(true, true)], &EstimatorConfig::default());
        assert_eq!(m, before);
    }

    #[test]
    fn zero_radius_disables_expansion() {
        let mut m = congested_map();
        let before = m.clone();
        expand(
            &mut m,
            &[seg(true, true)],
            &EstimatorConfig {
                expansion_radius: 0,
                ..EstimatorConfig::default()
            },
        );
        assert_eq!(m, before);
    }

    #[test]
    fn vertical_expansion_mirrors_horizontal() {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let h_cap = Grid::filled(r, 8, 8, 2.0);
        let v_cap = Grid::filled(r, 8, 8, 2.0);
        let h_dmd: Grid<f64> = Grid::new(r, 8, 8);
        let mut v_dmd: Grid<f64> = Grid::new(r, 8, 8);
        for y in 2..=6 {
            *v_dmd.at_mut(3, y) = 5.0;
        }
        let mut m = CongestionMap::new(h_cap, v_cap, h_dmd, v_dmd);
        let rec = SegmentRecord {
            ax: 3,
            ay: 2,
            bx: 3,
            by: 6,
            a_steiner: false,
            b_steiner: true,
        };
        expand(&mut m, &[rec], &EstimatorConfig::default());
        let col3: f64 = (2..=6).map(|y| *m.v_demand().at(3, y)).sum();
        assert!(col3 < 25.0);
        // Steiner endpoint b at row 6 gains horizontal connection demand.
        let row6: f64 = (0..8).map(|x| *m.h_demand().at(x, 6)).sum();
        assert!(row6 > 0.0);
    }
}
