//! Routing-detour-imitating congestion estimation (paper §III-A).
//!
//! The estimator produces a 2-D congestion map from a (possibly heavily
//! overlapped) global-placement snapshot in three steps:
//!
//! 1. **Blockage-aware capacity** ([`capacity`]) — per-Gcell horizontal and
//!    vertical track counts from the metal stack, minus resources blocked by
//!    macros and a power-grid derate (Eq. (8));
//! 2. **Topology-based probabilistic demand** ([`demand`]) — each net is
//!    decomposed into two-point nets on its RSMT (via [`puffer_flute`]);
//!    I-shaped segments deposit a full track of demand along their Gcells,
//!    L-shaped segments spread an average demand over their bounding box,
//!    and a pin penalty captures local nets (§III-A.2);
//! 3. **Detour-imitating expansion** ([`detour`]) — demand of congested
//!    I-shaped segments is pushed to neighbouring rows/columns with slack,
//!    imitating either a routing detour (Steiner endpoints, which adds
//!    perpendicular connection demand) or future cell spreading (pin
//!    endpoints, which adds none) (§III-A.3).
//!
//! The result is a [`CongestionMap`] exposing the paper's overflow (Eq. (7))
//! and congestion (Eq. (9)–(11)) quantities.
//!
//! # Example
//!
//! ```
//! use puffer_congest::{CongestionEstimator, EstimatorConfig};
//! use puffer_gen::{generate, GeneratorConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig { num_cells: 500, num_nets: 600,
//!     ..GeneratorConfig::default() })?;
//! let est = CongestionEstimator::new(&design, EstimatorConfig::default());
//! let map = est.estimate(&design, &design.initial_placement());
//! assert!(map.total_demand() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod capacity;
pub mod demand;
pub mod detour;
pub mod incremental;
pub mod map;

pub use capacity::build_capacity;
pub use demand::try_build_demand;
pub use incremental::DirtyStats;
pub use map::CongestionMap;

use puffer_budget::Budget;
/// Shared worker-thread defaults (hoisted to `puffer-budget` so the
/// estimator and the global router clamp identically).
pub use puffer_budget::{clamp_threads, default_threads};
use puffer_db::cast;
use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;
use puffer_trace::Trace;

/// Errors from the fallible estimator entry points.
#[derive(Debug)]
pub enum CongestError {
    /// A demand worker thread panicked; the payload message is preserved
    /// instead of unwinding (and possibly aborting) through `join()`.
    WorkerPanic(String),
}

impl std::fmt::Display for CongestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CongestError::WorkerPanic(m) => write!(f, "demand worker panicked: {m}"),
        }
    }
}

impl std::error::Error for CongestError {}

/// Configuration of the congestion estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Gcell edge length in multiples of the row height (square Gcells).
    pub gcell_rows: f64,
    /// Demand added per pin to the pin's Gcell in each direction,
    /// capturing local nets whose pins share a Gcell (§III-A.2).
    pub pin_penalty: f64,
    /// Fraction of every Gcell's capacity reserved for the power grid.
    pub power_derate: f64,
    /// How many neighbouring rows/columns the detour expansion may use.
    pub expansion_radius: usize,
    /// Fraction of a congested segment's overflow that expansion moves.
    pub expansion_strength: f64,
    /// Whether to run the detour-imitating expansion at all (ablation knob).
    pub expand_detours: bool,
    /// Whether [`CongestionEstimator::estimate_incremental`] actually reuses
    /// state between rounds. When `false` it behaves exactly like
    /// [`CongestionEstimator::estimate`] (escape hatch; the result is
    /// bit-identical either way).
    pub incremental: bool,
    /// Worker threads for the per-net demand pass (result is identical for
    /// any thread count).
    pub threads: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            gcell_rows: 3.0,
            pin_penalty: 0.08,
            power_derate: 0.12,
            expansion_radius: 2,
            expansion_strength: 0.7,
            expand_detours: true,
            incremental: true,
            threads: default_threads(),
        }
    }
}

/// The congestion estimator: capacity is computed once per design, demand is
/// recomputed per placement snapshot.
#[derive(Debug, Clone)]
pub struct CongestionEstimator {
    config: EstimatorConfig,
    h_cap: Grid<f64>,
    v_cap: Grid<f64>,
    trace: Trace,
    budget: Budget,
    /// Carry-over for [`CongestionEstimator::estimate_incremental`]; `None`
    /// until the first incremental round and after any geometry change.
    inc_state: Option<incremental::IncrementalState>,
}

impl CongestionEstimator {
    /// Builds the estimator (and its blockage-aware capacity maps) for a
    /// design.
    pub fn new(design: &Design, config: EstimatorConfig) -> Self {
        let (h_cap, v_cap) = capacity::build_capacity(design, &config);
        CongestionEstimator {
            config,
            h_cap,
            v_cap,
            trace: Trace::disabled(),
            budget: Budget::unbounded(),
            inc_state: None,
        }
    }

    /// Attaches an execution budget. When it is exhausted the estimator
    /// skips the detour-imitating expansion — a cheaper, slightly less
    /// accurate estimate instead of blowing the deadline.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Coarsens the estimation grid by `factor` (e.g. `2.0` doubles the
    /// Gcell edge, quartering the cell count) and rebuilds the capacity
    /// maps. First rung of the graceful-degradation ladder: demand and
    /// expansion cost scale with the Gcell count, so a coarser grid trades
    /// map resolution for time.
    pub fn coarsen(&mut self, design: &Design, factor: f64) {
        assert!(factor.is_finite() && factor >= 1.0, "bad coarsen factor {factor}");
        self.config.gcell_rows *= factor;
        let (h_cap, v_cap) = capacity::build_capacity(design, &self.config);
        self.h_cap = h_cap;
        self.v_cap = v_cap;
        // The grid geometry changed: cached per-chunk partials and pin
        // Gcells are meaningless on the new grid.
        self.inc_state = None;
    }

    /// Attaches a telemetry handle: every [`CongestionEstimator::estimate`]
    /// call emits one `congest.round` record (overflow ratios plus 8-bucket
    /// congestion histograms).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// The estimator configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Horizontal capacity map (tracks per Gcell).
    pub fn h_capacity(&self) -> &Grid<f64> {
        &self.h_cap
    }

    /// Vertical capacity map (tracks per Gcell).
    pub fn v_capacity(&self) -> &Grid<f64> {
        &self.v_cap
    }

    /// Estimates congestion for a placement snapshot: probabilistic demand,
    /// then (if enabled) detour-imitating expansion.
    ///
    /// # Panics
    ///
    /// Panics when a demand worker panics (e.g. a placement shorter than
    /// the netlist); use [`CongestionEstimator::try_estimate`] when the
    /// placement comes from an untrusted source.
    pub fn estimate(&self, design: &Design, placement: &Placement) -> CongestionMap {
        self.try_estimate(design, placement)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CongestionEstimator::estimate`].
    ///
    /// # Errors
    ///
    /// [`CongestError::WorkerPanic`] when a demand worker thread panics.
    pub fn try_estimate(
        &self,
        design: &Design,
        placement: &Placement,
    ) -> Result<CongestionMap, CongestError> {
        let (h_dmd, v_dmd, segments) = demand::try_build_demand(
            design,
            placement,
            &self.h_cap,
            self.config.pin_penalty,
            clamp_threads(self.config.threads),
        )?;
        Ok(self.finish(h_dmd, v_dmd, &segments))
    }

    /// [`CongestionEstimator::estimate`] with dirty-region reuse: Gcell
    /// demand is rebuilt only for the net chunks whose pins changed Gcells
    /// since the previous call, with RSMT decompositions served from a
    /// fingerprint-keyed cache. The result is **bit-identical** to
    /// [`CongestionEstimator::estimate`] — the incremental path replaces
    /// whole chunk partials and merges them in the same order, never
    /// subtracting demand. When `config.incremental` is `false`, falls back
    /// to the stateless full build.
    ///
    /// # Panics
    ///
    /// Panics when a demand worker panics; use
    /// [`CongestionEstimator::try_estimate_incremental`] for untrusted
    /// placements.
    pub fn estimate_incremental(
        &mut self,
        design: &Design,
        placement: &Placement,
    ) -> CongestionMap {
        self.try_estimate_incremental(design, placement)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CongestionEstimator::estimate_incremental`].
    ///
    /// # Errors
    ///
    /// [`CongestError::WorkerPanic`] when a demand worker thread panics; the
    /// carry-over state is dropped so the next call does a full rebuild.
    pub fn try_estimate_incremental(
        &mut self,
        design: &Design,
        placement: &Placement,
    ) -> Result<CongestionMap, CongestError> {
        if !self.config.incremental {
            return self.try_estimate(design, placement);
        }
        let result = incremental::try_build_demand_incremental(
            design,
            placement,
            &self.h_cap,
            self.config.pin_penalty,
            clamp_threads(self.config.threads),
            &mut self.inc_state,
        );
        let ((h_dmd, v_dmd, segments), stats) = match result {
            Ok(ok) => ok,
            Err(e) => {
                self.inc_state = None;
                return Err(e);
            }
        };
        if self.trace.is_enabled() {
            self.trace
                .record("congest.dirty")
                .int("nets", cast::idx_i64(stats.nets))
                .int("nets_dirty", cast::idx_i64(stats.nets_dirty))
                .int("nets_rebuilt", cast::idx_i64(stats.nets_rebuilt))
                .int("chunks", cast::idx_i64(stats.chunks))
                .int("chunks_dirty", cast::idx_i64(stats.chunks_dirty))
                .int("gcells_dirty", cast::idx_i64(stats.gcells_dirty))
                .int("rsmt_hits", cast::u64_i64(stats.rsmt_hits))
                .int("rsmt_misses", cast::u64_i64(stats.rsmt_misses))
                .num("reuse", stats.reuse_rate())
                .write();
        }
        Ok(self.finish(h_dmd, v_dmd, &segments))
    }

    /// Shared tail of every estimate: wrap demand in a [`CongestionMap`],
    /// run detour expansion (budget permitting), and emit the
    /// `congest.round` record.
    fn finish(
        &self,
        h_dmd: Grid<f64>,
        v_dmd: Grid<f64>,
        segments: &[demand::SegmentRecord],
    ) -> CongestionMap {
        let mut map = CongestionMap::new(self.h_cap.clone(), self.v_cap.clone(), h_dmd, v_dmd);
        if self.config.expand_detours && !self.budget.is_exhausted() {
            detour::expand(&mut map, segments, &self.config);
        }
        if self.trace.is_enabled() {
            self.trace.add("congest.rounds", 1);
            self.trace
                .record("congest.round")
                .num("overflow_h", map.overflow_ratio_h())
                .num("overflow_v", map.overflow_ratio_v())
                .num("demand", map.total_demand())
                .num(
                    "capacity",
                    map.h_capacity().sum() + map.v_capacity().sum(),
                )
                .int("congested", cast::idx_i64(map.congested_cells()))
                .nums("h_hist", &congestion_histogram(&map, true))
                .nums("v_hist", &congestion_histogram(&map, false))
                .write();
        }
        map
    }
}

/// 8-bucket histogram of per-Gcell congestion (demand/capacity), bucket
/// width 0.25 with the last bucket catching everything ≥ 1.75. Computed
/// only when a trace is attached — it walks the whole grid.
fn congestion_histogram(map: &CongestionMap, horizontal: bool) -> Vec<f64> {
    let mut hist = vec![0.0; 8];
    for iy in 0..map.ny() {
        for ix in 0..map.nx() {
            let cg = if horizontal {
                map.cg_h(ix, iy)
            } else {
                map.cg_v(ix, iy)
            };
            let bucket = cast::trunc_idx(cg / 0.25).min(7);
            hist[bucket] += 1.0;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn tiny_design() -> puffer_db::design::Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn estimator_produces_consistent_shapes() {
        let d = tiny_design();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let map = est.estimate(&d, &d.initial_placement());
        assert_eq!(map.h_demand().nx(), est.h_capacity().nx());
        assert_eq!(map.v_demand().ny(), est.v_capacity().ny());
        assert!(map.total_demand() > 0.0);
    }

    /// Cells laid out in index order (so the generator's cluster locality
    /// becomes spatial locality, like a real placement), compressed into a
    /// central box covering `frac` of each region dimension.
    fn clustered_placement(d: &puffer_db::design::Design, frac: f64) -> Placement {
        let r = d.region();
        let c = r.center();
        let n = d.netlist().movable_cells().count();
        let cluster = 48usize;
        let tiles = n.div_ceil(cluster);
        let tiles_per_row = (tiles as f64).sqrt().ceil() as usize;
        let inner = (cluster as f64).sqrt().ceil() as usize;
        let mut p = d.initial_placement();
        for (i, id) in d.netlist().movable_cells().enumerate() {
            let t = i / cluster;
            let j = i % cluster;
            let (tx, ty) = (t % tiles_per_row, t / tiles_per_row);
            let (jx, jy) = (j % inner, j / inner);
            let fx = (tx as f64 + (jx as f64 + 0.5) / inner as f64) / tiles_per_row as f64 - 0.5;
            let fy = (ty as f64 + (jy as f64 + 0.5) / inner as f64) / tiles_per_row as f64 - 0.5;
            p.set(
                id,
                puffer_db::geom::Point::new(
                    c.x + fx * frac * r.width(),
                    c.y + fy * frac * r.height(),
                ),
            );
        }
        p
    }

    #[test]
    fn clustered_placement_is_more_congested_than_spread() {
        let d = tiny_design();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let tight = est.estimate(&d, &clustered_placement(&d, 0.25));
        let loose = est.estimate(&d, &clustered_placement(&d, 0.95));
        assert!(
            tight.overflow_ratio_h() + tight.overflow_ratio_v()
                > loose.overflow_ratio_h() + loose.overflow_ratio_v(),
            "tight ({}, {}) should exceed loose ({}, {})",
            tight.overflow_ratio_h(),
            tight.overflow_ratio_v(),
            loose.overflow_ratio_h(),
            loose.overflow_ratio_v()
        );
    }

    #[test]
    fn traced_estimate_emits_round_records() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let dir = std::env::temp_dir().join("puffer-congest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rounds.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        est.set_trace(trace.clone());
        est.estimate(&d, &d.initial_placement());
        est.estimate(&d, &d.initial_placement());
        trace.flush().unwrap();
        let records = puffer_trace::read_jsonl(&path).unwrap();
        let rounds: Vec<_> = records
            .iter()
            .filter(|r| r.kind() == Some("congest.round"))
            .collect();
        assert_eq!(rounds.len(), 2);
        let r = rounds[0];
        assert!(r.num("overflow_h").unwrap() >= 0.0);
        assert!(r.num("demand").unwrap() > 0.0);
        let Some(puffer_trace::Value::Arr(hist)) = r.get("h_hist") else {
            panic!("missing h_hist");
        };
        assert_eq!(hist.len(), 8);
        let total: f64 = hist.iter().map(|b| b.unwrap_or(0.0)).sum();
        assert_eq!(total as usize, est.h_capacity().nx() * est.h_capacity().ny());
        assert_eq!(trace.counters(), vec![("congest.rounds".to_string(), 2)]);
    }

    #[test]
    fn coarsen_shrinks_the_grid() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let (nx, ny) = (est.h_capacity().nx(), est.h_capacity().ny());
        est.coarsen(&d, 2.0);
        assert!(est.h_capacity().nx() < nx, "{} < {nx}", est.h_capacity().nx());
        assert!(est.h_capacity().ny() < ny, "{} < {ny}", est.h_capacity().ny());
        assert_eq!(est.config().gcell_rows, 6.0);
        // The coarser estimator still produces a usable map.
        let map = est.estimate(&d, &d.initial_placement());
        assert!(map.total_demand() > 0.0);
    }

    #[test]
    fn exhausted_budget_skips_detour_expansion() {
        let d = tiny_design();
        let p = clustered_placement(&d, 0.2);
        let mut bounded = CongestionEstimator::new(&d, EstimatorConfig::default());
        let token = puffer_budget::CancelToken::new();
        token.cancel();
        bounded.set_budget(Budget::unbounded().with_token(token));
        let without = CongestionEstimator::new(
            &d,
            EstimatorConfig {
                expand_detours: false,
                ..EstimatorConfig::default()
            },
        );
        let a = bounded.estimate(&d, &p);
        let b = without.estimate(&d, &p);
        assert_eq!(a.h_demand().as_slice(), b.h_demand().as_slice());
        assert_eq!(a.v_demand().as_slice(), b.v_demand().as_slice());
    }

    /// Moves a deterministic fraction of cells by small deltas, crossing
    /// some Gcell boundaries but leaving most nets untouched.
    fn perturb(d: &puffer_db::design::Design, p: &mut Placement, round: u64) {
        use puffer_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0xD1A7 ^ round);
        let r = d.region();
        for id in d.netlist().movable_cells() {
            if rng.gen_range(0.0..1.0) < 0.07 {
                let cur = p.pos(id);
                let dx = rng.gen_range(-8.0..8.0);
                let dy = rng.gen_range(-8.0..8.0);
                p.set(
                    id,
                    puffer_db::geom::Point::new(
                        (cur.x + dx).clamp(r.xl, r.xh),
                        (cur.y + dy).clamp(r.yl, r.yh),
                    ),
                );
            }
        }
    }

    #[test]
    fn incremental_is_bit_identical_to_full_every_round() {
        let d = tiny_design();
        let mut inc = CongestionEstimator::new(&d, EstimatorConfig::default());
        let full = CongestionEstimator::new(&d, EstimatorConfig::default());
        let mut p = d.initial_placement();
        for round in 0..6 {
            let a = inc.estimate_incremental(&d, &p);
            let b = full.estimate(&d, &p);
            assert!(a.bitwise_eq(&b), "round {round} diverged");
            perturb(&d, &mut p, round);
        }
    }

    #[test]
    fn incremental_flag_off_is_a_full_build() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(
            &d,
            EstimatorConfig {
                incremental: false,
                ..EstimatorConfig::default()
            },
        );
        let p = d.initial_placement();
        let a = est.estimate_incremental(&d, &p);
        let b = est.estimate(&d, &p);
        assert!(a.bitwise_eq(&b));
    }

    #[test]
    fn coarsen_invalidates_incremental_state() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let p = d.initial_placement();
        est.estimate_incremental(&d, &p);
        est.coarsen(&d, 2.0);
        // The coarse-grid incremental result must match a coarse full build.
        let a = est.estimate_incremental(&d, &p);
        let b = est.estimate(&d, &p);
        assert!(a.bitwise_eq(&b));
    }

    #[test]
    fn incremental_emits_dirty_records_with_reuse() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let dir = std::env::temp_dir().join("puffer-congest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.jsonl");
        let trace = Trace::with_sink(&path).unwrap();
        est.set_trace(trace.clone());
        let mut p = d.initial_placement();
        est.estimate_incremental(&d, &p);
        perturb(&d, &mut p, 1);
        est.estimate_incremental(&d, &p);
        trace.flush().unwrap();
        let records = puffer_trace::read_jsonl(&path).unwrap();
        let dirty: Vec<_> = records
            .iter()
            .filter(|r| r.kind() == Some("congest.dirty"))
            .collect();
        assert_eq!(dirty.len(), 2);
        // First round: everything dirty, no reuse.
        assert_eq!(dirty[0].num("reuse").unwrap(), 0.0);
        assert_eq!(
            dirty[0].num("nets_rebuilt").unwrap(),
            dirty[0].num("nets").unwrap()
        );
        // Second round: a 7% perturbation leaves some chunks clean and the
        // RSMT cache warm.
        assert!(dirty[1].num("rsmt_hits").unwrap() > 0.0);
        assert!(
            dirty[1].num("nets_dirty").unwrap() <= dirty[1].num("nets_rebuilt").unwrap(),
            "dirty nets are a subset of rebuilt nets"
        );
    }

    #[test]
    fn dirty_records_are_byte_identical_run_to_run() {
        // Determinism regression for the RSMT cache: eviction/demotion are
        // ordered-map operations, so hit/miss counters — and therefore the
        // whole congest.dirty record stream — must reproduce exactly. A
        // HashMap-backed cache segment would let iteration order leak into
        // the counters and break this byte-compare.
        let d = tiny_design();
        let dir = std::env::temp_dir().join("puffer-congest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let run = |path: &std::path::Path| {
            let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
            let trace = Trace::with_sink(path).unwrap();
            est.set_trace(trace.clone());
            let mut p = d.initial_placement();
            for round in 0..4 {
                est.estimate_incremental(&d, &p);
                perturb(&d, &mut p, round);
            }
            trace.flush().unwrap();
        };
        let (a, b) = (dir.join("dirty-a.jsonl"), dir.join("dirty-b.jsonl"));
        run(&a);
        run(&b);
        // `elapsed_s` is measured wall-clock time — the only field allowed
        // to differ between runs. Everything else must match byte for byte.
        let mask_elapsed = |l: &str| -> String {
            let start = l.find("\"elapsed_s\":").expect("record has elapsed_s");
            let rest = &l[start..];
            let end = start + rest.find(',').expect("elapsed_s is not last");
            format!("{}{}", &l[..start], &l[end..])
        };
        let dirty_lines = |p: &std::path::Path| -> Vec<String> {
            std::fs::read_to_string(p)
                .unwrap()
                .lines()
                .filter(|l| l.contains("\"congest.dirty\""))
                .map(mask_elapsed)
                .collect()
        };
        let (la, lb) = (dirty_lines(&a), dirty_lines(&b));
        assert_eq!(la.len(), 4);
        assert_eq!(la, lb, "congest.dirty records must be byte-identical");
        // The comparison is only meaningful if the cache actually worked.
        assert!(la[1].contains("\"rsmt_hits\""));
    }

    #[test]
    fn incremental_worker_panic_resets_state() {
        let d = tiny_design();
        let mut est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let p = d.initial_placement();
        est.estimate_incremental(&d, &p);
        let short = Placement::zeroed(1);
        let err = est.try_estimate_incremental(&d, &short).unwrap_err();
        assert!(matches!(err, CongestError::WorkerPanic(_)), "{err}");
        // Recovery: the next good call rebuilds from scratch and matches a
        // full build.
        let a = est.estimate_incremental(&d, &p);
        let b = est.estimate(&d, &p);
        assert!(a.bitwise_eq(&b));
    }

    #[test]
    fn expansion_toggle_changes_result() {
        let d = tiny_design();
        let with = CongestionEstimator::new(&d, EstimatorConfig::default());
        let without = CongestionEstimator::new(
            &d,
            EstimatorConfig {
                expand_detours: false,
                ..EstimatorConfig::default()
            },
        );
        let p = clustered_placement(&d, 0.2);
        let a = with.estimate(&d, &p);
        let b = without.estimate(&d, &p);
        // The clustered placement is congested, so expansion must have moved
        // something.
        assert!(
            a.h_demand().as_slice() != b.h_demand().as_slice()
                || a.v_demand().as_slice() != b.v_demand().as_slice()
        );
        // Expansion transfers demand, it must not manufacture horizontal
        // mass out of nothing (Steiner detours may add perpendicular mass).
        assert!(a.h_demand().sum() <= b.h_demand().sum() + b.v_demand().sum() + 1e-6);
    }
}
