//! Routing-detour-imitating congestion estimation (paper §III-A).
//!
//! The estimator produces a 2-D congestion map from a (possibly heavily
//! overlapped) global-placement snapshot in three steps:
//!
//! 1. **Blockage-aware capacity** ([`capacity`]) — per-Gcell horizontal and
//!    vertical track counts from the metal stack, minus resources blocked by
//!    macros and a power-grid derate (Eq. (8));
//! 2. **Topology-based probabilistic demand** ([`demand`]) — each net is
//!    decomposed into two-point nets on its RSMT (via [`puffer_flute`]);
//!    I-shaped segments deposit a full track of demand along their Gcells,
//!    L-shaped segments spread an average demand over their bounding box,
//!    and a pin penalty captures local nets (§III-A.2);
//! 3. **Detour-imitating expansion** ([`detour`]) — demand of congested
//!    I-shaped segments is pushed to neighbouring rows/columns with slack,
//!    imitating either a routing detour (Steiner endpoints, which adds
//!    perpendicular connection demand) or future cell spreading (pin
//!    endpoints, which adds none) (§III-A.3).
//!
//! The result is a [`CongestionMap`] exposing the paper's overflow (Eq. (7))
//! and congestion (Eq. (9)–(11)) quantities.
//!
//! # Example
//!
//! ```
//! use puffer_congest::{CongestionEstimator, EstimatorConfig};
//! use puffer_gen::{generate, GeneratorConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate(&GeneratorConfig { num_cells: 500, num_nets: 600,
//!     ..GeneratorConfig::default() })?;
//! let est = CongestionEstimator::new(&design, EstimatorConfig::default());
//! let map = est.estimate(&design, &design.initial_placement());
//! assert!(map.total_demand() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod capacity;
pub mod demand;
pub mod detour;
pub mod map;

pub use capacity::build_capacity;
pub use map::CongestionMap;

use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;

/// Configuration of the congestion estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Gcell edge length in multiples of the row height (square Gcells).
    pub gcell_rows: f64,
    /// Demand added per pin to the pin's Gcell in each direction,
    /// capturing local nets whose pins share a Gcell (§III-A.2).
    pub pin_penalty: f64,
    /// Fraction of every Gcell's capacity reserved for the power grid.
    pub power_derate: f64,
    /// How many neighbouring rows/columns the detour expansion may use.
    pub expansion_radius: usize,
    /// Fraction of a congested segment's overflow that expansion moves.
    pub expansion_strength: f64,
    /// Whether to run the detour-imitating expansion at all (ablation knob).
    pub expand_detours: bool,
    /// Worker threads for the per-net demand pass (result is identical for
    /// any thread count).
    pub threads: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            gcell_rows: 3.0,
            pin_penalty: 0.08,
            power_derate: 0.12,
            expansion_radius: 2,
            expansion_strength: 0.7,
            expand_detours: true,
            threads: 8,
        }
    }
}

/// The congestion estimator: capacity is computed once per design, demand is
/// recomputed per placement snapshot.
#[derive(Debug, Clone)]
pub struct CongestionEstimator {
    config: EstimatorConfig,
    h_cap: Grid<f64>,
    v_cap: Grid<f64>,
}

impl CongestionEstimator {
    /// Builds the estimator (and its blockage-aware capacity maps) for a
    /// design.
    pub fn new(design: &Design, config: EstimatorConfig) -> Self {
        let (h_cap, v_cap) = capacity::build_capacity(design, &config);
        CongestionEstimator {
            config,
            h_cap,
            v_cap,
        }
    }

    /// The estimator configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Horizontal capacity map (tracks per Gcell).
    pub fn h_capacity(&self) -> &Grid<f64> {
        &self.h_cap
    }

    /// Vertical capacity map (tracks per Gcell).
    pub fn v_capacity(&self) -> &Grid<f64> {
        &self.v_cap
    }

    /// Estimates congestion for a placement snapshot: probabilistic demand,
    /// then (if enabled) detour-imitating expansion.
    pub fn estimate(&self, design: &Design, placement: &Placement) -> CongestionMap {
        let (h_dmd, v_dmd, segments) = demand::build_demand(
            design,
            placement,
            &self.h_cap,
            self.config.pin_penalty,
            self.config.threads,
        );
        let mut map = CongestionMap::new(self.h_cap.clone(), self.v_cap.clone(), h_dmd, v_dmd);
        if self.config.expand_detours {
            detour::expand(&mut map, &segments, &self.config);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puffer_gen::{generate, GeneratorConfig};

    fn tiny_design() -> puffer_db::design::Design {
        generate(&GeneratorConfig {
            num_cells: 400,
            num_nets: 450,
            num_macros: 2,
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn estimator_produces_consistent_shapes() {
        let d = tiny_design();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let map = est.estimate(&d, &d.initial_placement());
        assert_eq!(map.h_demand().nx(), est.h_capacity().nx());
        assert_eq!(map.v_demand().ny(), est.v_capacity().ny());
        assert!(map.total_demand() > 0.0);
    }

    /// Cells laid out in index order (so the generator's cluster locality
    /// becomes spatial locality, like a real placement), compressed into a
    /// central box covering `frac` of each region dimension.
    fn clustered_placement(d: &puffer_db::design::Design, frac: f64) -> Placement {
        let r = d.region();
        let c = r.center();
        let n = d.netlist().movable_cells().count();
        let cluster = 48usize;
        let tiles = n.div_ceil(cluster);
        let tiles_per_row = (tiles as f64).sqrt().ceil() as usize;
        let inner = (cluster as f64).sqrt().ceil() as usize;
        let mut p = d.initial_placement();
        for (i, id) in d.netlist().movable_cells().enumerate() {
            let t = i / cluster;
            let j = i % cluster;
            let (tx, ty) = (t % tiles_per_row, t / tiles_per_row);
            let (jx, jy) = (j % inner, j / inner);
            let fx = (tx as f64 + (jx as f64 + 0.5) / inner as f64) / tiles_per_row as f64 - 0.5;
            let fy = (ty as f64 + (jy as f64 + 0.5) / inner as f64) / tiles_per_row as f64 - 0.5;
            p.set(
                id,
                puffer_db::geom::Point::new(
                    c.x + fx * frac * r.width(),
                    c.y + fy * frac * r.height(),
                ),
            );
        }
        p
    }

    #[test]
    fn clustered_placement_is_more_congested_than_spread() {
        let d = tiny_design();
        let est = CongestionEstimator::new(&d, EstimatorConfig::default());
        let tight = est.estimate(&d, &clustered_placement(&d, 0.25));
        let loose = est.estimate(&d, &clustered_placement(&d, 0.95));
        assert!(
            tight.overflow_ratio_h() + tight.overflow_ratio_v()
                > loose.overflow_ratio_h() + loose.overflow_ratio_v(),
            "tight ({}, {}) should exceed loose ({}, {})",
            tight.overflow_ratio_h(),
            tight.overflow_ratio_v(),
            loose.overflow_ratio_h(),
            loose.overflow_ratio_v()
        );
    }

    #[test]
    fn expansion_toggle_changes_result() {
        let d = tiny_design();
        let with = CongestionEstimator::new(&d, EstimatorConfig::default());
        let without = CongestionEstimator::new(
            &d,
            EstimatorConfig {
                expand_detours: false,
                ..EstimatorConfig::default()
            },
        );
        let p = clustered_placement(&d, 0.2);
        let a = with.estimate(&d, &p);
        let b = without.estimate(&d, &p);
        // The clustered placement is congested, so expansion must have moved
        // something.
        assert!(
            a.h_demand().as_slice() != b.h_demand().as_slice()
                || a.v_demand().as_slice() != b.v_demand().as_slice()
        );
        // Expansion transfers demand, it must not manufacture horizontal
        // mass out of nothing (Steiner detours may add perpendicular mass).
        assert!(a.h_demand().sum() <= b.h_demand().sum() + b.v_demand().sum() + 1e-6);
    }
}
