//! Incremental congestion re-evaluation with dirty-region tracking.
//!
//! The padding loop re-estimates congestion every round, yet between rounds
//! only a small fraction of cells cross a Gcell boundary. This module keeps
//! per-chunk demand partials (the same `puffer_par` chunks the full build
//! uses) plus each pin's quantized Gcell from the previous round. A chunk is
//! **dirty** when any net in it touches a Gcell whose membership changed —
//! i.e. any of that net's pins moved to a different Gcell. Dirty chunks are
//! rebuilt from scratch in net-index order; clean chunks reuse their cached
//! partial verbatim. The ordered `merge_add` over chunk partials is the same
//! in both cases, so the incremental result is **bit-identical** to a full
//! recompute by construction — no demand is ever subtracted and re-added
//! (which would change f64 accumulation order and drift).
//!
//! RSMT decompositions are memoized per chunk in a fingerprint-keyed LRU
//! ([`RsmtCache`]): the key is the net's sorted, deduplicated pin-Gcell
//! offsets relative to its bounding box, and the cached value is exactly
//! what [`crate::demand::decompose_offsets`] returns, so a cache hit
//! deposits bit-identical segments to a miss. Caches live one-per-chunk;
//! each chunk is built by exactly one worker, so the per-chunk mutexes are
//! uncontended, and nets stay in the same chunk across rounds so reuse
//! actually lands.

use crate::demand::{self, ChunkPartial, SegmentRecord};
use puffer_db::cast;
use puffer_db::design::{Design, Placement};
use puffer_db::grid::Grid;
use puffer_db::netlist::PinId;
use puffer_budget::lockcheck::{classes, lock_ordered};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Fingerprint-keyed memo of RSMT decompositions (segmented LRU).
///
/// Two *ordered* maps, `hot` and `cold`: hits in `hot` are served directly, hits
/// in `cold` promote the entry back to `hot`, misses build and insert into
/// `hot`. When `hot` outgrows the capacity, `cold` is dropped and `hot`
/// rotates into its place — an O(1) amortized generational eviction that
/// bounds the cache at twice the capacity while keeping recently-used
/// fingerprints resident across rip-up rounds.
#[derive(Debug, Default, Clone)]
pub(crate) struct RsmtCache {
    hot: BTreeMap<Vec<(u32, u32)>, Vec<SegmentRecord>>,
    cold: BTreeMap<Vec<(u32, u32)>, Vec<SegmentRecord>>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl RsmtCache {
    pub(crate) fn new(cap: usize) -> Self {
        RsmtCache {
            hot: BTreeMap::new(),
            cold: BTreeMap::new(),
            cap: cap.max(16),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the canonical decomposition for `offsets` and whether it was
    /// served from cache. The returned records are in offset space; callers
    /// translate by the net's bounding-box minimum.
    pub(crate) fn get_or_build(&mut self, offsets: &[(u32, u32)]) -> (Vec<SegmentRecord>, bool) {
        if let Some(recs) = self.hot.get(offsets) {
            self.hits += 1;
            return (recs.clone(), true);
        }
        if let Some(recs) = self.cold.remove(offsets) {
            self.hits += 1;
            self.insert(offsets.to_vec(), recs.clone());
            return (recs, true);
        }
        self.misses += 1;
        let recs = demand::decompose_offsets(offsets);
        self.insert(offsets.to_vec(), recs.clone());
        (recs, false)
    }

    fn insert(&mut self, key: Vec<(u32, u32)>, recs: Vec<SegmentRecord>) {
        if self.hot.len() >= self.cap {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, recs);
    }

    #[cfg(test)]
    pub(crate) fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        out
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }
}

/// Per-round statistics from an incremental demand build, reported in the
/// `congest.dirty` trace record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirtyStats {
    /// Total nets in the design.
    pub nets: usize,
    /// Nets with at least one pin whose Gcell changed since last round.
    pub nets_dirty: usize,
    /// Nets actually re-derived (quantize + fingerprint + decompose).
    /// Equals [`DirtyStats::nets_dirty`] when prior partials existed —
    /// clean nets inside a dirty chunk replay their cached records — and
    /// every net in a dirty chunk otherwise (first round, post-coarsen).
    pub nets_rebuilt: usize,
    /// Total `puffer_par` chunks.
    pub chunks: usize,
    /// Chunks rebuilt this round.
    pub chunks_dirty: usize,
    /// Distinct Gcells whose cell membership changed.
    pub gcells_dirty: usize,
    /// RSMT cache hits across rebuilt chunks this round.
    pub rsmt_hits: u64,
    /// RSMT cache misses across rebuilt chunks this round.
    pub rsmt_misses: u64,
}

impl DirtyStats {
    /// Fraction of nets whose cached work was reused (1 − rebuilt/total).
    pub fn reuse_rate(&self) -> f64 {
        if self.nets == 0 {
            return 0.0;
        }
        1.0 - cast::idx_f64(self.nets_rebuilt) / cast::idx_f64(self.nets)
    }
}

/// Carry-over state for incremental demand builds.
///
/// Holds the previous round's per-pin Gcells, per-chunk demand partials, and
/// per-chunk RSMT caches. Invalidated (rebuilt from scratch) whenever the
/// grid geometry or pin count changes.
#[derive(Debug)]
pub(crate) struct IncrementalState {
    /// Grid shape this state was built against.
    nx: usize,
    ny: usize,
    num_pins: usize,
    num_nets: usize,
    /// Quantized Gcell index (iy * nx + ix) per pin, previous round.
    pin_cells: Vec<u32>,
    /// Cached per-chunk partials, one per `puffer_par` chunk.
    partials: Vec<ChunkPartial>,
    /// Per-chunk RSMT caches; exactly one worker touches each during a
    /// build, so these mutexes are uncontended (they exist only to make the
    /// state `Sync` for the scoped workers).
    caches: Vec<Mutex<RsmtCache>>,
}

impl Clone for IncrementalState {
    fn clone(&self) -> Self {
        IncrementalState {
            nx: self.nx,
            ny: self.ny,
            num_pins: self.num_pins,
            num_nets: self.num_nets,
            pin_cells: self.pin_cells.clone(),
            partials: self.partials.clone(),
            caches: self
                .caches
                .iter()
                .map(|m| Mutex::new(lock_ordered(m, &classes::CONGEST_RSMT).clone()))
                .collect(),
        }
    }
}

/// Quantizes every pin to its Gcell index in `template`, in pin order. Runs
/// on the worker pool so a bad placement (e.g. shorter than the netlist)
/// surfaces as [`crate::CongestError::WorkerPanic`], exactly like the full
/// demand build.
fn quantize_pins(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    threads: usize,
) -> Result<Vec<u32>, crate::CongestError> {
    let netlist = design.netlist();
    let nx = cast::idx_u32(template.nx());
    let parts = puffer_par::try_map_chunks(netlist.num_pins(), threads, |range| {
        range
            .map(|i| {
                let pos = placement.pin_pos(netlist, PinId(cast::idx_u32(i)));
                let (ix, iy) = template.cell_of(pos);
                cast::idx_u32(iy) * nx + cast::idx_u32(ix)
            })
            .collect::<Vec<u32>>()
    })
    .map_err(|e| crate::CongestError::WorkerPanic(e.0))?;
    Ok(parts.concat())
}

impl IncrementalState {
    /// True when this state can seed an incremental build against the given
    /// geometry; false forces a full rebuild.
    fn compatible(&self, template: &Grid<f64>, num_pins: usize, num_nets: usize) -> bool {
        self.nx == template.nx()
            && self.ny == template.ny()
            && self.num_pins == num_pins
            && self.num_nets == num_nets
    }
}

/// Incremental [`crate::demand::try_build_demand`]: reuses `state` when
/// compatible, rebuilding only dirty chunks, and replaces `state` with this
/// round's snapshot. The merged result is bit-identical to a full build.
///
/// # Errors
///
/// [`crate::CongestError::WorkerPanic`] if a rebuild worker panics; the
/// state is cleared so the next round falls back to a full build.
pub(crate) fn try_build_demand_incremental(
    design: &Design,
    placement: &Placement,
    template: &Grid<f64>,
    pin_penalty: f64,
    threads: usize,
    state: &mut Option<IncrementalState>,
) -> Result<(crate::demand::DemandMaps, DirtyStats), crate::CongestError> {
    let netlist = design.netlist();
    let num_nets = netlist.num_nets();
    let ranges = puffer_par::chunk_ranges(num_nets);
    let pin_cells = quantize_pins(design, placement, template, threads)?;

    // Decide what to rebuild. With no compatible prior state, everything is
    // dirty (first round, post-coarsen, or resumed flow).
    let mut prev = state
        .take()
        .filter(|s| s.compatible(template, pin_cells.len(), num_nets));
    let mut stats = DirtyStats {
        nets: num_nets,
        chunks: ranges.len(),
        ..DirtyStats::default()
    };
    // Per-net dirty flag: any pin whose Gcell changed marks its net dirty.
    let mut net_dirty = vec![prev.is_none(); num_nets];
    if let Some(p) = &prev {
        let mut dirty_cells: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for (i, (&cell, &prev_cell)) in pin_cells.iter().zip(&p.pin_cells).enumerate() {
            if cell != prev_cell {
                dirty_cells.insert(cell);
                dirty_cells.insert(prev_cell);
                let pin = netlist.pin(PinId(cast::idx_u32(i)));
                net_dirty[pin.net.index()] = true;
            }
        }
        stats.gcells_dirty = dirty_cells.len();
    }
    stats.nets_dirty = net_dirty.iter().filter(|&&d| d).count();
    let chunk_dirty: Vec<bool> = ranges
        .iter()
        .map(|r| net_dirty[r.clone()].iter().any(|&d| d))
        .collect();
    stats.chunks_dirty = chunk_dirty.iter().filter(|&&d| d).count();
    // Rebuild granularity is per *net* when prior partials exist (clean
    // nets inside a dirty chunk replay their cached records); without a
    // prior round every net in a dirty chunk is re-derived.
    stats.nets_rebuilt = if prev.is_some() {
        stats.nets_dirty
    } else {
        ranges
            .iter()
            .zip(&chunk_dirty)
            .filter(|(_, &d)| d)
            .map(|(r, _)| r.len())
            .sum()
    };

    // Reuse the previous round's caches (or start fresh ones), one per
    // chunk, sized to the chunk so a full working set stays resident. Taken
    // out of `prev` so the workers can lock them while `prev`'s partials
    // are still borrowed for replay.
    let caches: Vec<Mutex<RsmtCache>> = match prev.as_mut() {
        Some(p) if p.caches.len() == ranges.len() => std::mem::take(&mut p.caches),
        _ => ranges
            .iter()
            .map(|r| Mutex::new(RsmtCache::new(r.len().max(1024))))
            .collect(),
    };

    // Rebuild dirty chunks on the worker pool; each worker owns its chunk's
    // cache for the duration (uncontended lock) and replays clean nets from
    // the chunk's previous partial.
    let prev_ref = prev.as_ref();
    let rebuilt = puffer_par::try_map_chunks(num_nets, threads, |range| {
        let chunk = ranges
            .iter()
            .position(|r| r.start == range.start && r.end == range.end);
        match chunk {
            Some(c) if chunk_dirty[c] => {
                let mut cache = lock_ordered(&caches[c], &classes::CONGEST_RSMT);
                let replay = prev_ref.map(|p| (&p.partials[c], &net_dirty[range.clone()]));
                Some(demand::build_chunk_partial(
                    netlist,
                    placement,
                    template,
                    range,
                    Some(&mut cache),
                    replay,
                ))
            }
            _ => None,
        }
    })
    .map_err(|e| crate::CongestError::WorkerPanic(e.0))?;

    // Assemble this round's chunk partials: rebuilt where dirty, cached
    // otherwise, then merge in chunk order — the exact order the full build
    // uses, so the sums are bit-identical.
    let mut prev_partials = prev.map(|p| p.partials).unwrap_or_default();
    let mut partials: Vec<ChunkPartial> = Vec::with_capacity(ranges.len());
    for (c, rebuilt_part) in rebuilt.into_iter().enumerate() {
        match rebuilt_part {
            Some(part) => {
                stats.rsmt_hits += part.rsmt_hits;
                stats.rsmt_misses += part.rsmt_misses;
                partials.push(part);
            }
            None => {
                // Clean chunk: move the cached partial in (prev_partials is
                // indexed identically because chunk_ranges is a pure
                // function of num_nets, which compatible() pinned via
                // num_pins + the netlist being immutable per design).
                partials.push(std::mem::replace(
                    &mut prev_partials[c],
                    ChunkPartial {
                        h: Grid::new(template.region(), 1, 1),
                        v: Grid::new(template.region(), 1, 1),
                        segs: Vec::new(),
                        net_ends: Vec::new(),
                        rsmt_hits: 0,
                        rsmt_misses: 0,
                    },
                ));
            }
        }
    }

    let mut h_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let mut v_dmd: Grid<f64> = Grid::new(template.region(), template.nx(), template.ny());
    let mut segments = Vec::new();
    for part in &partials {
        puffer_par::merge_add(h_dmd.as_mut_slice(), part.h.as_slice());
        puffer_par::merge_add(v_dmd.as_mut_slice(), part.v.as_slice());
        segments.extend_from_slice(&part.segs);
    }
    demand::add_pin_penalty(&mut h_dmd, &mut v_dmd, netlist, placement, pin_penalty);

    *state = Some(IncrementalState {
        nx: template.nx(),
        ny: template.ny(),
        num_pins: pin_cells.len(),
        num_nets,
        pin_cells,
        partials,
        caches,
    });

    Ok(((h_dmd, v_dmd, segments), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_equals_miss_bitwise() {
        let mut cache = RsmtCache::new(16);
        let offsets = vec![(0u32, 0u32), (3, 1), (5, 4)];
        let (first, hit1) = cache.get_or_build(&offsets);
        let (second, hit2) = cache.get_or_build(&offsets);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        assert_eq!(first, demand::decompose_offsets(&offsets));
    }

    #[test]
    fn cache_rotation_bounds_size() {
        let mut cache = RsmtCache::new(16);
        for i in 0..200u32 {
            cache.get_or_build(&[(0, 0), (i + 1, 1)]);
        }
        assert!(cache.len() <= 32, "len {}", cache.len());
    }

    #[test]
    fn cold_hits_promote_back_to_hot() {
        let mut cache = RsmtCache::new(16);
        let keeper = vec![(0u32, 0u32), (7, 7)];
        cache.get_or_build(&keeper);
        // Overflow hot so the keeper rotates to cold, then hit it again.
        for i in 0..16u32 {
            cache.get_or_build(&[(0, 0), (i + 10, 1)]);
        }
        let (_, hit) = cache.get_or_build(&keeper);
        assert!(hit, "cold entry should still hit");
        let (hits, misses) = cache.take_counters();
        assert_eq!(hits, 1);
        assert_eq!(misses, 17);
    }

    #[test]
    fn zero_extent_fingerprint_has_no_segments() {
        let mut cache = RsmtCache::new(16);
        let (recs, _) = cache.get_or_build(&[(0, 0)]);
        assert!(recs.is_empty());
    }
}
