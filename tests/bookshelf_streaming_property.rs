//! Property test: the streaming Bookshelf front-end is bit-identical to
//! the slurping one.
//!
//! Both front-ends drive the same per-line parser, but they differ in how
//! they feed it (whole-string iteration vs a reused `BufRead` line
//! buffer), so this test throws randomized designs *and* randomized
//! whitespace mutilations — CRLF line endings, interleaved comments,
//! blank lines, trailing horizontal garbage — at both and requires the
//! resulting designs to archive to identical bytes.

use puffer_db::bookshelf::{parse_bookshelf, parse_bookshelf_streaming, write_pl};
use puffer_db::design::Design;
use puffer_db::io::write_design;
use puffer_gen::{generate, GeneratorConfig};
use puffer_rng::StdRng;

/// Builds Bookshelf text for a generated design (same shape as the
/// round-trip fixture in `bookshelf_flow.rs`).
fn to_bookshelf(design: &Design) -> (String, String, String, String) {
    let nl = design.netlist();
    let mut nodes = String::from("UCLA nodes 1.0\n");
    for (_, c) in nl.iter_cells() {
        if c.is_movable() {
            nodes.push_str(&format!("{} {} {}\n", c.name, c.width, c.height));
        } else {
            nodes.push_str(&format!("{} {} {} terminal\n", c.name, c.width, c.height));
        }
    }
    let mut nets = String::from("UCLA nets 1.0\n");
    for (id, net) in nl.iter_nets() {
        nets.push_str(&format!("NetDegree : {} {}\n", nl.net_degree(id), net.name));
        for &pid in nl.net_pins(id) {
            let pin = nl.pin(pid);
            nets.push_str(&format!(
                " {} B : {} {}\n",
                nl.cell(pin.cell).name,
                pin.offset.x,
                pin.offset.y
            ));
        }
    }
    let pl = write_pl(design, &design.initial_placement());
    let region = design.region();
    let tech = design.tech();
    let n_rows = (region.height() / tech.row_height).floor() as usize;
    let n_sites = (region.width() / tech.site_width).floor() as usize;
    let mut scl = String::from("UCLA scl 1.0\n");
    for i in 0..n_rows {
        scl.push_str(&format!(
            "CoreRow Horizontal\n Coordinate : {}\n Height : {}\n Sitewidth : {}\n \
             SubrowOrigin : {} NumSites : {}\nEnd\n",
            region.yl + i as f64 * tech.row_height,
            tech.row_height,
            tech.site_width,
            region.xl,
            n_sites
        ));
    }
    (nodes, nets, pl, scl)
}

/// Randomly mutilates Bookshelf text in ways the format tolerates:
/// comment lines, blank lines, CRLF endings, and trailing spaces/tabs.
/// The *content* lines (and their order) are untouched.
fn mutilate(text: &str, rng: &mut StdRng) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    for line in text.lines() {
        if rng.gen_bool(0.10) {
            out.push_str("# a comment the parser must skip\n");
        }
        if rng.gen_bool(0.08) {
            out.push('\n');
        }
        out.push_str(line);
        if rng.gen_bool(0.15) {
            // Trailing horizontal garbage: spaces and tabs only, so the
            // trimmed content is unchanged.
            out.push_str(" \t  ");
        }
        if rng.gen_bool(0.5) {
            out.push_str("\r\n");
        } else {
            out.push('\n');
        }
    }
    if rng.gen_bool(0.5) {
        out.push_str("\n\n# trailing comment\n\n");
    }
    out
}

/// Archives a design to its canonical byte representation.
fn archive(design: &Design) -> Vec<u8> {
    let mut buf = Vec::new();
    write_design(design, &mut buf).expect("archive");
    buf
}

#[test]
fn streaming_parser_matches_slurping_parser_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0xB00C_5E1F);
    for case in 0..12u64 {
        let cells = rng.gen_range(20..220);
        let config = GeneratorConfig {
            name: format!("prop{case}"),
            num_cells: cells,
            num_nets: cells + rng.gen_range(0..cells / 2 + 1),
            num_macros: rng.gen_range(0..3),
            utilization: 0.5 + rng.next_f64() * 0.2,
            hotspot: if rng.gen_bool(0.3) { 0.5 } else { 0.0 },
            seed: 0x5EED_0000 + case,
            ..GeneratorConfig::default()
        };
        let design = generate(&config).expect("generate");
        let (nodes, nets, pl, scl) = to_bookshelf(&design);
        let (nodes, nets, pl, scl) = (
            mutilate(&nodes, &mut rng),
            mutilate(&nets, &mut rng),
            mutilate(&pl, &mut rng),
            mutilate(&scl, &mut rng),
        );

        let slurped =
            parse_bookshelf("prop", &nodes, &nets, &pl, &scl).expect("slurp parse");
        let streamed = parse_bookshelf_streaming(
            "prop",
            nodes.as_bytes(),
            nets.as_bytes(),
            pl.as_bytes(),
            scl.as_bytes(),
        )
        .expect("streaming parse");

        assert_eq!(
            archive(&slurped),
            archive(&streamed),
            "case {case}: front-ends disagree"
        );
        // And the mutilation really was harmless: structure matches the
        // generated original.
        assert_eq!(
            slurped.stats().movable_cells,
            design.stats().movable_cells,
            "case {case}"
        );
        assert_eq!(slurped.stats().nets, design.stats().nets, "case {case}");
    }
}

#[test]
fn streaming_parser_matches_slurp_on_pathological_line_endings() {
    // Deterministic worst case: every line CRLF, comments between records,
    // no trailing newline on the final line.
    let nodes = "UCLA nodes 1.0\r\n# c\r\na 2 1\r\nb 2 1\r\n\r\nm 4 1 terminal\r\n";
    let nets = "UCLA nets 1.0\r\nNetDegree : 2 n0\r\n a B : 0 0\r\n b B : 0.5 0\r\n# done";
    let pl = "UCLA pl 1.0\r\nm 10 0 : N /FIXED\r\n";
    let scl = "UCLA scl 1.0\r\nCoreRow Horizontal\r\n Coordinate : 0\r\n Height : 1\r\n \
               Sitewidth : 0.2\r\n SubrowOrigin : 0 NumSites : 100\r\nEnd\r\n";
    let slurped = parse_bookshelf("crlf", nodes, nets, pl, scl).expect("slurp");
    let streamed = parse_bookshelf_streaming(
        "crlf",
        nodes.as_bytes(),
        nets.as_bytes(),
        pl.as_bytes(),
        scl.as_bytes(),
    )
    .expect("stream");
    assert_eq!(archive(&slurped), archive(&streamed));
    assert_eq!(slurped.stats().nets, 1);
}
