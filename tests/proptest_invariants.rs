//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use puffer_db::design::{Design, Placement};
use puffer_db::geom::{Point, Rect};
use puffer_db::grid::Grid;
use puffer_db::hpwl::total_hpwl;
use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
use puffer_db::tech::Technology;
use puffer_flute::{mst_wirelength, Topology};
use puffer_legal::{check_legal, discretize_padding, legalize};
use puffer_place::wa_wirelength_grad;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RSMT wirelength is sandwiched between the Steiner lower bound and
    /// the MST, and the topology is always a connected tree.
    #[test]
    fn rsmt_is_bounded_and_connected(points in arb_points(20)) {
        let topo = Topology::from_points(&points);
        let mst = mst_wirelength(&points);
        prop_assert!(topo.wirelength() <= mst + 1e-6);
        prop_assert!(topo.wirelength() >= mst / 1.5 - 1e-6);
        prop_assert!(topo.is_connected_tree());
    }

    /// Splatting arbitrary rectangles into a grid conserves mass for
    /// rectangles inside the region.
    #[test]
    fn grid_splat_conserves_mass(
        xl in 0.0..80.0f64,
        yl in 0.0..80.0f64,
        w in 0.1..20.0f64,
        h in 0.1..20.0f64,
        amount in 0.1..100.0f64,
    ) {
        let mut g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 16);
        g.splat(&Rect::new(xl, yl, xl + w, yl + h), amount);
        prop_assert!((g.sum() - amount).abs() < 1e-6);
    }

    /// WA wirelength is always a lower bound of HPWL and converges to it.
    #[test]
    fn wa_lower_bounds_hpwl(points in arb_points(8)) {
        prop_assume!(points.len() >= 2);
        let mut nb = NetlistBuilder::new();
        let ids: Vec<_> = (0..points.len())
            .map(|i| nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable))
            .collect();
        let n = nb.add_net("n");
        for &c in &ids {
            nb.connect(n, c, Point::ORIGIN).unwrap();
        }
        let nl = nb.build().unwrap();
        let mut p = Placement::zeroed(points.len());
        for (i, pt) in points.iter().enumerate() {
            p.set(ids[i], *pt);
        }
        let hp = total_hpwl(&nl, &p);
        let tight = wa_wirelength_grad(&nl, &p, 0.01).value;
        let loose = wa_wirelength_grad(&nl, &p, 10.0).value;
        prop_assert!(tight <= hp + 1e-6, "tight {tight} > hpwl {hp}");
        prop_assert!(loose <= hp + 1e-6, "loose {loose} > hpwl {hp}");
        prop_assert!((hp - tight) <= (hp - loose) + 1e-6, "smaller gamma is tighter");
    }

    /// Legalization of any in-region placement yields a legal placement.
    #[test]
    fn legalization_always_legal(
        seed_positions in prop::collection::vec((0.0..40.0f64, 0.0..40.0f64), 30..60),
        pad_pattern in prop::collection::vec(0u32..4, 60),
    ) {
        let mut nb = NetlistBuilder::new();
        for i in 0..seed_positions.len() {
            nb.add_cell(format!("c{i}"), 0.6, 1.0, CellKind::Movable);
        }
        let d = Design::new(
            "t",
            nb.build().unwrap(),
            Technology::default(),
            Rect::new(0.0, 0.0, 40.0, 40.0),
        )
        .unwrap();
        let mut p = Placement::zeroed(seed_positions.len());
        for (i, &(x, y)) in seed_positions.iter().enumerate() {
            p.set(CellId(i as u32), Point::new(x, y));
        }
        let pads: Vec<u32> =
            (0..seed_positions.len()).map(|i| pad_pattern[i % pad_pattern.len()]).collect();
        let out = legalize(&d, &p, &pads).expect("ample capacity");
        check_legal(&d, &out.placement, &pads).expect("must be legal");
    }

    /// Discretized padding is monotone in the continuous padding and never
    /// maps positive padding to zero.
    #[test]
    fn discretization_is_monotone(
        mut pads in prop::collection::vec(0.0..10.0f64, 2..40),
        theta in 1.0..8.0f64,
    ) {
        pads.sort_by(f64::total_cmp);
        let d = discretize_padding(&pads, theta);
        for w in d.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for (c, disc) in pads.iter().zip(&d) {
            if *c > 0.0 {
                prop_assert!(*disc >= 1);
            } else {
                prop_assert_eq!(*disc, 0);
            }
        }
    }

    /// The congestion-map combination rule (Eq. 10) is monotone in demand.
    #[test]
    fn congestion_monotone_in_demand(
        base in 0.0..20.0f64,
        extra in 0.0..20.0f64,
        cap in 1.0..30.0f64,
    ) {
        use puffer_congest::CongestionMap;
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let mk = |dmd: f64| CongestionMap::new(
            Grid::filled(r, 2, 2, cap),
            Grid::filled(r, 2, 2, cap),
            Grid::filled(r, 2, 2, dmd),
            Grid::filled(r, 2, 2, 0.0),
        );
        let lo = mk(base);
        let hi = mk(base + extra);
        prop_assert!(hi.cg(0, 0) >= lo.cg(0, 0) - 1e-12);
        prop_assert!(hi.overflow_ratio_h() >= lo.overflow_ratio_h() - 1e-12);
    }
}
