//! Property-based tests on cross-crate invariants, driven by the
//! in-workspace `puffer_rng::check` harness.

use puffer_db::design::{Design, Placement};
use puffer_db::geom::{Point, Rect};
use puffer_db::grid::Grid;
use puffer_db::hpwl::total_hpwl;
use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
use puffer_db::tech::Technology;
use puffer_flute::{mst_wirelength, Topology};
use puffer_legal::{check_legal, discretize_padding, legalize};
use puffer_place::wa_wirelength_grad;
use puffer_rng::check::{run_cases, vec_of};
use puffer_rng::{prop_check, StdRng};

fn arb_points(rng: &mut StdRng, max: usize) -> Vec<Point> {
    vec_of(rng, 1..max, |r| {
        Point::new(r.gen_range(0.0..100.0), r.gen_range(0.0..100.0))
    })
}

/// RSMT wirelength is sandwiched between the Steiner lower bound and
/// the MST, and the topology is always a connected tree.
#[test]
fn rsmt_is_bounded_and_connected() {
    run_cases(
        64,
        0x1001,
        |rng| arb_points(rng, 20),
        |points| {
            let topo = Topology::from_points(points);
            let mst = mst_wirelength(points);
            prop_check!(topo.wirelength() <= mst + 1e-6);
            prop_check!(topo.wirelength() >= mst / 1.5 - 1e-6);
            prop_check!(topo.is_connected_tree());
            Ok(())
        },
    );
}

/// Splatting arbitrary rectangles into a grid conserves mass for
/// rectangles inside the region.
#[test]
fn grid_splat_conserves_mass() {
    run_cases(
        64,
        0x1002,
        |rng| {
            (
                rng.gen_range(0.0..80.0),
                rng.gen_range(0.0..80.0),
                rng.gen_range(0.1..20.0),
                rng.gen_range(0.1..20.0),
                rng.gen_range(0.1..100.0),
            )
        },
        |&(xl, yl, w, h, amount)| {
            let mut g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 16);
            g.splat(&Rect::new(xl, yl, xl + w, yl + h), amount);
            prop_check!(
                (g.sum() - amount).abs() < 1e-6,
                "mass {} != {amount}",
                g.sum()
            );
            Ok(())
        },
    );
}

/// WA wirelength is always a lower bound of HPWL and converges to it.
#[test]
fn wa_lower_bounds_hpwl() {
    run_cases(
        64,
        0x1003,
        |rng| {
            let mut pts = arb_points(rng, 8);
            // The property needs at least two pins.
            if pts.len() < 2 {
                pts.push(Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)));
            }
            pts
        },
        |points| {
            let mut nb = NetlistBuilder::new();
            let ids: Vec<_> = (0..points.len())
                .map(|i| nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable))
                .collect();
            let n = nb.add_net("n");
            for &c in &ids {
                nb.connect(n, c, Point::ORIGIN).unwrap();
            }
            let nl = nb.build().unwrap();
            let mut p = Placement::zeroed(points.len());
            for (i, pt) in points.iter().enumerate() {
                p.set(ids[i], *pt);
            }
            let hp = total_hpwl(&nl, &p);
            let tight = wa_wirelength_grad(&nl, &p, 0.01).value;
            let loose = wa_wirelength_grad(&nl, &p, 10.0).value;
            prop_check!(tight <= hp + 1e-6, "tight {tight} > hpwl {hp}");
            prop_check!(loose <= hp + 1e-6, "loose {loose} > hpwl {hp}");
            prop_check!(
                (hp - tight) <= (hp - loose) + 1e-6,
                "smaller gamma is tighter"
            );
            Ok(())
        },
    );
}

/// Legalization of any in-region placement yields a legal placement.
#[test]
fn legalization_always_legal() {
    run_cases(
        64,
        0x1004,
        |rng| {
            let positions = vec_of(rng, 30..60, |r| {
                (r.gen_range(0.0..40.0), r.gen_range(0.0..40.0))
            });
            let pad_pattern: Vec<u32> = (0..60).map(|_| rng.gen_range(0..4u32)).collect();
            (positions, pad_pattern)
        },
        |(seed_positions, pad_pattern)| {
            let mut nb = NetlistBuilder::new();
            for i in 0..seed_positions.len() {
                nb.add_cell(format!("c{i}"), 0.6, 1.0, CellKind::Movable);
            }
            let d = Design::new(
                "t",
                nb.build().unwrap(),
                Technology::default(),
                Rect::new(0.0, 0.0, 40.0, 40.0),
            )
            .unwrap();
            let mut p = Placement::zeroed(seed_positions.len());
            for (i, &(x, y)) in seed_positions.iter().enumerate() {
                p.set(CellId(i as u32), Point::new(x, y));
            }
            let pads: Vec<u32> = (0..seed_positions.len())
                .map(|i| pad_pattern[i % pad_pattern.len()])
                .collect();
            let out = legalize(&d, &p, &pads).expect("ample capacity");
            prop_check!(
                check_legal(&d, &out.placement, &pads).is_ok(),
                "legalized placement is not legal"
            );
            Ok(())
        },
    );
}

/// Discretized padding is monotone in the continuous padding and never
/// maps positive padding to zero.
#[test]
fn discretization_is_monotone() {
    run_cases(
        64,
        0x1005,
        |rng| {
            let mut pads = vec_of(rng, 2..40, |r| r.gen_range(0.0..10.0));
            pads.sort_by(f64::total_cmp);
            let theta = rng.gen_range(1.0..8.0);
            (pads, theta)
        },
        |(pads, theta)| {
            let d = discretize_padding(pads, *theta);
            for w in d.windows(2) {
                prop_check!(w[0] <= w[1], "not monotone: {} then {}", w[0], w[1]);
            }
            for (c, disc) in pads.iter().zip(&d) {
                if *c > 0.0 {
                    prop_check!(*disc >= 1, "positive padding {c} mapped to zero");
                } else {
                    prop_check!(*disc == 0, "zero padding mapped to {disc}");
                }
            }
            Ok(())
        },
    );
}

/// The congestion-map combination rule (Eq. 10) is monotone in demand.
#[test]
fn congestion_monotone_in_demand() {
    run_cases(
        64,
        0x1006,
        |rng| {
            (
                rng.gen_range(0.0..20.0),
                rng.gen_range(0.0..20.0),
                rng.gen_range(1.0..30.0),
            )
        },
        |&(base, extra, cap)| {
            use puffer_congest::CongestionMap;
            let r = Rect::new(0.0, 0.0, 4.0, 4.0);
            let mk = |dmd: f64| {
                CongestionMap::new(
                    Grid::filled(r, 2, 2, cap),
                    Grid::filled(r, 2, 2, cap),
                    Grid::filled(r, 2, 2, dmd),
                    Grid::filled(r, 2, 2, 0.0),
                )
            };
            let lo = mk(base);
            let hi = mk(base + extra);
            prop_check!(hi.cg(0, 0) >= lo.cg(0, 0) - 1e-12);
            prop_check!(hi.overflow_ratio_h() >= lo.overflow_ratio_h() - 1e-12);
            Ok(())
        },
    );
}

/// The parallel WA gradient sums to (numerically) zero over each net's
/// cells — WA is translation invariant — and is bit-identical to the
/// serial path for any thread count.
#[test]
fn parallel_gradient_sums_to_zero_per_net() {
    use puffer_place::wa_wirelength_grad_threaded;
    run_cases(
        32,
        0x1007,
        |rng| {
            // Disjoint nets so per-net gradient sums are separable.
            let nets = rng.gen_range(1..6usize);
            let shapes: Vec<Vec<Point>> = (0..nets)
                .map(|_| {
                    vec_of(rng, 2..7, |r| {
                        Point::new(r.gen_range(0.0..100.0), r.gen_range(0.0..100.0))
                    })
                })
                .collect();
            let gamma = rng.gen_range(0.5..8.0);
            let threads = rng.gen_range(2..9usize);
            (shapes, gamma, threads)
        },
        |(shapes, gamma, threads)| {
            let mut nb = NetlistBuilder::new();
            let mut net_cells: Vec<Vec<CellId>> = Vec::new();
            for (ni, pts) in shapes.iter().enumerate() {
                let ids: Vec<_> = (0..pts.len().max(2))
                    .map(|i| nb.add_cell(format!("c{ni}_{i}"), 1.0, 1.0, CellKind::Movable))
                    .collect();
                let net = nb.add_net(format!("n{ni}"));
                for &c in &ids {
                    nb.connect(net, c, Point::ORIGIN).unwrap();
                }
                net_cells.push(ids);
            }
            let nl = nb.build().unwrap();
            let mut p = Placement::zeroed(nl.num_cells());
            for (ni, pts) in shapes.iter().enumerate() {
                for (i, pt) in pts.iter().enumerate() {
                    p.set(net_cells[ni][i], *pt);
                }
            }
            let serial = wa_wirelength_grad_threaded(&nl, &p, *gamma, 1);
            let par = wa_wirelength_grad_threaded(&nl, &p, *gamma, *threads);
            prop_check!(
                par.value.to_bits() == serial.value.to_bits(),
                "value not bit-identical at {threads} threads"
            );
            for (a, b) in par.grad_x.iter().zip(&serial.grad_x) {
                prop_check!(a.to_bits() == b.to_bits(), "grad_x not bit-identical");
            }
            for (a, b) in par.grad_y.iter().zip(&serial.grad_y) {
                prop_check!(a.to_bits() == b.to_bits(), "grad_y not bit-identical");
            }
            for cells in &net_cells {
                let sx: f64 = cells.iter().map(|c| par.grad_x[c.index()]).sum();
                let sy: f64 = cells.iter().map(|c| par.grad_y[c.index()]).sum();
                let scale: f64 = cells
                    .iter()
                    .map(|c| par.grad_x[c.index()].abs() + par.grad_y[c.index()].abs())
                    .sum::<f64>()
                    .max(1.0);
                prop_check!(sx.abs() <= 1e-9 * scale, "x-sum {sx} not ~0");
                prop_check!(sy.abs() <= 1e-9 * scale, "y-sum {sy} not ~0");
            }
            Ok(())
        },
    );
}

/// Merging per-chunk partial density grids in chunk order conserves the
/// total charge histogram and is invariant to the worker count.
#[test]
fn density_histogram_is_conserved_under_partial_grid_merge() {
    run_cases(
        32,
        0x1008,
        |rng| {
            let cells: Vec<(f64, f64, f64)> = vec_of(rng, 1..40, |r| {
                (
                    r.gen_range(6.0..58.0),
                    r.gen_range(6.0..58.0),
                    r.gen_range(0.5..3.0),
                )
            });
            let threads = rng.gen_range(2..9usize);
            (cells, threads)
        },
        |(cells, threads)| {
            let region = Rect::new(0.0, 0.0, 64.0, 64.0);
            let (mx, my) = (32usize, 32usize);
            let (dx, dy) = (region.width() / mx as f64, region.height() / my as f64);
            let scatter = |t: usize| -> Grid<f64> {
                let parts = puffer_par::map_chunks(cells.len(), t, |range| {
                    let mut g: Grid<f64> = Grid::new(region, mx, my);
                    for i in range {
                        let (x, y, w) = cells[i];
                        let r = Rect::new(
                            x - w.max(dx) / 2.0,
                            y - 1f64.max(dy) / 2.0,
                            x + w.max(dx) / 2.0,
                            y + 1f64.max(dy) / 2.0,
                        );
                        g.splat(&r, w); // height 1.0 → charge = w
                    }
                    g
                });
                let mut merged: Grid<f64> = Grid::new(region, mx, my);
                for p in &parts {
                    puffer_par::merge_add(merged.as_mut_slice(), p.as_slice());
                }
                merged
            };
            let merged = scatter(*threads);
            let single = scatter(1);
            for (a, b) in merged.as_slice().iter().zip(single.as_slice()) {
                prop_check!(
                    a.to_bits() == b.to_bits(),
                    "merged grid not bit-identical at {threads} threads"
                );
            }
            let total: f64 = cells.iter().map(|c| c.2).sum();
            prop_check!(
                (merged.sum() - total).abs() <= 1e-9 * total.max(1.0),
                "histogram mass {} != total charge {total}",
                merged.sum()
            );
            Ok(())
        },
    );
}

/// The threaded 2-D transform round trip (DCT-II forward, DCT-III inverse,
/// orthogonal normalisation) reproduces the serial round trip bit-for-bit,
/// so its reconstruction error is *exactly* the serial error.
#[test]
fn transform_round_trip_error_matches_serial_exactly() {
    use puffer_fft::{dct2, dct3, transform2d_threaded};
    run_cases(
        32,
        0x1009,
        |rng| {
            let dims = [8usize, 16, 32];
            let nx = dims[rng.gen_range(0..3usize)];
            let ny = dims[rng.gen_range(0..3usize)];
            let data: Vec<f64> = (0..nx * ny).map(|_| rng.gen_range(-10.0..10.0)).collect();
            let threads = rng.gen_range(2..9usize);
            (nx, ny, data, threads)
        },
        |(nx, ny, data, threads)| {
            let norm = 4.0 / (*nx as f64 * *ny as f64);
            let round_trip = |t: usize| -> Vec<f64> {
                let fwd = transform2d_threaded(data, *nx, *ny, dct2, t);
                let mut back = transform2d_threaded(&fwd, *nx, *ny, dct3, t);
                for v in &mut back {
                    *v *= norm;
                }
                back
            };
            let serial = round_trip(1);
            let par = round_trip(*threads);
            for ((s, p), orig) in serial.iter().zip(&par).zip(data) {
                prop_check!(
                    s.to_bits() == p.to_bits(),
                    "round trip not bit-identical at {threads} threads"
                );
                prop_check!(
                    (s - orig).abs() <= 1e-9 * orig.abs().max(1.0),
                    "round trip error too large: {s} vs {orig}"
                );
            }
            Ok(())
        },
    );
}

/// Incremental congestion re-estimation (dirty-region tracking + RSMT
/// cache) is bit-identical to a from-scratch rebuild after every round of
/// random cell moves, and every map it produces passes the audit
/// checkers — histogram conservation included.
#[test]
fn incremental_congestion_matches_full_rebuild_every_round() {
    use puffer_audit::Validate;
    use puffer_congest::{CongestionEstimator, EstimatorConfig};
    use puffer_gen::{generate, GeneratorConfig};
    run_cases(
        6,
        0x100A,
        |rng| {
            (
                rng.gen_range(0u64..1u64 << 48), // design seed
                rng.gen_range(0u64..1u64 << 48), // move seed
                rng.gen_range(1..5usize),        // threads
                rng.gen_range(3..6usize),        // rounds
            )
        },
        |&(design_seed, move_seed, threads, rounds)| {
            let design = generate(&GeneratorConfig {
                num_cells: 180,
                num_nets: 200,
                num_macros: 1,
                hotspot: 0.5,
                seed: design_seed,
                ..GeneratorConfig::default()
            })
            .unwrap();
            let cfg = EstimatorConfig {
                threads,
                ..EstimatorConfig::default()
            };
            let mut inc = CongestionEstimator::new(&design, cfg.clone());
            let full = CongestionEstimator::new(&design, cfg);
            let region = design.region();
            let movable: Vec<_> = design.netlist().movable_cells().collect();
            let mut placement = design.initial_placement();
            let mut rng = StdRng::seed_from_u64(move_seed);
            for round in 0..rounds {
                if round > 0 {
                    // Move a random ~10% subset; the rest stays put so the
                    // incremental path has clean chunks to reuse.
                    for &id in &movable {
                        if rng.gen_range(0.0..1.0) < 0.1 {
                            let p = placement.pos(id);
                            let x = (p.x + rng.gen_range(-12.0..12.0))
                                .clamp(region.xl, region.xh);
                            let y = (p.y + rng.gen_range(-12.0..12.0))
                                .clamp(region.yl, region.yh);
                            placement.set(id, Point::new(x, y));
                        }
                    }
                }
                let a = inc.estimate_incremental(&design, &placement);
                let b = full.estimate(&design, &placement);
                prop_check!(
                    a.bitwise_eq(&b),
                    "incremental map diverged from full rebuild at round {round}"
                );
                prop_check!(
                    a.validate().is_ok(),
                    "map fails audit checks at round {round}: {:?}",
                    a.validate().err()
                );
            }
            Ok(())
        },
    );
}
