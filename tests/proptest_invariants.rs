//! Property-based tests on cross-crate invariants, driven by the
//! in-workspace `puffer_rng::check` harness.

use puffer_db::design::{Design, Placement};
use puffer_db::geom::{Point, Rect};
use puffer_db::grid::Grid;
use puffer_db::hpwl::total_hpwl;
use puffer_db::netlist::{CellId, CellKind, NetlistBuilder};
use puffer_db::tech::Technology;
use puffer_flute::{mst_wirelength, Topology};
use puffer_legal::{check_legal, discretize_padding, legalize};
use puffer_place::wa_wirelength_grad;
use puffer_rng::check::{run_cases, vec_of};
use puffer_rng::{prop_check, StdRng};

fn arb_points(rng: &mut StdRng, max: usize) -> Vec<Point> {
    vec_of(rng, 1..max, |r| {
        Point::new(r.gen_range(0.0..100.0), r.gen_range(0.0..100.0))
    })
}

/// RSMT wirelength is sandwiched between the Steiner lower bound and
/// the MST, and the topology is always a connected tree.
#[test]
fn rsmt_is_bounded_and_connected() {
    run_cases(
        64,
        0x1001,
        |rng| arb_points(rng, 20),
        |points| {
            let topo = Topology::from_points(points);
            let mst = mst_wirelength(points);
            prop_check!(topo.wirelength() <= mst + 1e-6);
            prop_check!(topo.wirelength() >= mst / 1.5 - 1e-6);
            prop_check!(topo.is_connected_tree());
            Ok(())
        },
    );
}

/// Splatting arbitrary rectangles into a grid conserves mass for
/// rectangles inside the region.
#[test]
fn grid_splat_conserves_mass() {
    run_cases(
        64,
        0x1002,
        |rng| {
            (
                rng.gen_range(0.0..80.0),
                rng.gen_range(0.0..80.0),
                rng.gen_range(0.1..20.0),
                rng.gen_range(0.1..20.0),
                rng.gen_range(0.1..100.0),
            )
        },
        |&(xl, yl, w, h, amount)| {
            let mut g: Grid<f64> = Grid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 16, 16);
            g.splat(&Rect::new(xl, yl, xl + w, yl + h), amount);
            prop_check!(
                (g.sum() - amount).abs() < 1e-6,
                "mass {} != {amount}",
                g.sum()
            );
            Ok(())
        },
    );
}

/// WA wirelength is always a lower bound of HPWL and converges to it.
#[test]
fn wa_lower_bounds_hpwl() {
    run_cases(
        64,
        0x1003,
        |rng| {
            let mut pts = arb_points(rng, 8);
            // The property needs at least two pins.
            if pts.len() < 2 {
                pts.push(Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)));
            }
            pts
        },
        |points| {
            let mut nb = NetlistBuilder::new();
            let ids: Vec<_> = (0..points.len())
                .map(|i| nb.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable))
                .collect();
            let n = nb.add_net("n");
            for &c in &ids {
                nb.connect(n, c, Point::ORIGIN).unwrap();
            }
            let nl = nb.build().unwrap();
            let mut p = Placement::zeroed(points.len());
            for (i, pt) in points.iter().enumerate() {
                p.set(ids[i], *pt);
            }
            let hp = total_hpwl(&nl, &p);
            let tight = wa_wirelength_grad(&nl, &p, 0.01).value;
            let loose = wa_wirelength_grad(&nl, &p, 10.0).value;
            prop_check!(tight <= hp + 1e-6, "tight {tight} > hpwl {hp}");
            prop_check!(loose <= hp + 1e-6, "loose {loose} > hpwl {hp}");
            prop_check!(
                (hp - tight) <= (hp - loose) + 1e-6,
                "smaller gamma is tighter"
            );
            Ok(())
        },
    );
}

/// Legalization of any in-region placement yields a legal placement.
#[test]
fn legalization_always_legal() {
    run_cases(
        64,
        0x1004,
        |rng| {
            let positions = vec_of(rng, 30..60, |r| {
                (r.gen_range(0.0..40.0), r.gen_range(0.0..40.0))
            });
            let pad_pattern: Vec<u32> = (0..60).map(|_| rng.gen_range(0..4u32)).collect();
            (positions, pad_pattern)
        },
        |(seed_positions, pad_pattern)| {
            let mut nb = NetlistBuilder::new();
            for i in 0..seed_positions.len() {
                nb.add_cell(format!("c{i}"), 0.6, 1.0, CellKind::Movable);
            }
            let d = Design::new(
                "t",
                nb.build().unwrap(),
                Technology::default(),
                Rect::new(0.0, 0.0, 40.0, 40.0),
            )
            .unwrap();
            let mut p = Placement::zeroed(seed_positions.len());
            for (i, &(x, y)) in seed_positions.iter().enumerate() {
                p.set(CellId(i as u32), Point::new(x, y));
            }
            let pads: Vec<u32> = (0..seed_positions.len())
                .map(|i| pad_pattern[i % pad_pattern.len()])
                .collect();
            let out = legalize(&d, &p, &pads).expect("ample capacity");
            prop_check!(
                check_legal(&d, &out.placement, &pads).is_ok(),
                "legalized placement is not legal"
            );
            Ok(())
        },
    );
}

/// Discretized padding is monotone in the continuous padding and never
/// maps positive padding to zero.
#[test]
fn discretization_is_monotone() {
    run_cases(
        64,
        0x1005,
        |rng| {
            let mut pads = vec_of(rng, 2..40, |r| r.gen_range(0.0..10.0));
            pads.sort_by(f64::total_cmp);
            let theta = rng.gen_range(1.0..8.0);
            (pads, theta)
        },
        |(pads, theta)| {
            let d = discretize_padding(pads, *theta);
            for w in d.windows(2) {
                prop_check!(w[0] <= w[1], "not monotone: {} then {}", w[0], w[1]);
            }
            for (c, disc) in pads.iter().zip(&d) {
                if *c > 0.0 {
                    prop_check!(*disc >= 1, "positive padding {c} mapped to zero");
                } else {
                    prop_check!(*disc == 0, "zero padding mapped to {disc}");
                }
            }
            Ok(())
        },
    );
}

/// The congestion-map combination rule (Eq. 10) is monotone in demand.
#[test]
fn congestion_monotone_in_demand() {
    run_cases(
        64,
        0x1006,
        |rng| {
            (
                rng.gen_range(0.0..20.0),
                rng.gen_range(0.0..20.0),
                rng.gen_range(1.0..30.0),
            )
        },
        |&(base, extra, cap)| {
            use puffer_congest::CongestionMap;
            let r = Rect::new(0.0, 0.0, 4.0, 4.0);
            let mk = |dmd: f64| {
                CongestionMap::new(
                    Grid::filled(r, 2, 2, cap),
                    Grid::filled(r, 2, 2, cap),
                    Grid::filled(r, 2, 2, dmd),
                    Grid::filled(r, 2, 2, 0.0),
                )
            };
            let lo = mk(base);
            let hi = mk(base + extra);
            prop_check!(hi.cg(0, 0) >= lo.cg(0, 0) - 1e-12);
            prop_check!(hi.overflow_ratio_h() >= lo.overflow_ratio_h() - 1e-12);
            Ok(())
        },
    );
}
