//! Integration: a Bookshelf-imported design runs through the full flow.

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_db::bookshelf::{parse_bookshelf, write_pl};
use puffer_db::design::Design;
use puffer_db::io::write_design;
use puffer_gen::{generate, GeneratorConfig};

/// Builds Bookshelf text for a generated design (round-trip fixture):
/// nodes/nets from the netlist, rows matching the region, macros in .pl.
fn to_bookshelf(design: &Design) -> (String, String, String, String) {
    let nl = design.netlist();
    let mut nodes = String::from("UCLA nodes 1.0\n");
    for (_, c) in nl.iter_cells() {
        if c.is_movable() {
            nodes.push_str(&format!("{} {} {}\n", c.name, c.width, c.height));
        } else {
            nodes.push_str(&format!("{} {} {} terminal\n", c.name, c.width, c.height));
        }
    }
    let mut nets = String::from("UCLA nets 1.0\n");
    for (id, net) in nl.iter_nets() {
        nets.push_str(&format!("NetDegree : {} {}\n", nl.net_degree(id), net.name));
        for &pid in nl.net_pins(id) {
            let pin = nl.pin(pid);
            nets.push_str(&format!(
                " {} B : {} {}\n",
                nl.cell(pin.cell).name,
                pin.offset.x,
                pin.offset.y
            ));
        }
    }
    let pl = write_pl(design, &design.initial_placement());
    let region = design.region();
    let tech = design.tech();
    let n_rows = (region.height() / tech.row_height).floor() as usize;
    let n_sites = (region.width() / tech.site_width).floor() as usize;
    let mut scl = String::from("UCLA scl 1.0\n");
    for i in 0..n_rows {
        scl.push_str(&format!(
            "CoreRow Horizontal\n Coordinate : {}\n Height : {}\n Sitewidth : {}\n \
             SubrowOrigin : {} NumSites : {}\nEnd\n",
            region.yl + i as f64 * tech.row_height,
            tech.row_height,
            tech.site_width,
            region.xl,
            n_sites
        ));
    }
    (nodes, nets, pl, scl)
}

#[test]
fn bookshelf_round_trip_preserves_structure_and_places() {
    let original = generate(&GeneratorConfig {
        num_cells: 250,
        num_nets: 280,
        num_macros: 2,
        utilization: 0.55,
        ..GeneratorConfig::default()
    })
    .expect("generate");
    let (nodes, nets, pl, scl) = to_bookshelf(&original);
    let imported = parse_bookshelf("roundtrip", &nodes, &nets, &pl, &scl).expect("parse");
    imported.check_macros_placed().expect("macros placed via .pl");

    // Same structural statistics.
    assert_eq!(imported.stats().movable_cells, original.stats().movable_cells);
    assert_eq!(imported.stats().nets, original.stats().nets);
    assert_eq!(imported.stats().movable_pins, original.stats().movable_pins);
    assert_eq!(imported.stats().macros, original.stats().macros);

    // The imported design places and routes end to end.
    let mut cfg = PufferConfig::default();
    cfg.placer.max_iters = 120;
    cfg.placer.stop_overflow = 0.15;
    let flow = PufferPlacer::new(cfg).place(&imported).expect("place");
    let zeros = vec![0u32; imported.netlist().num_cells()];
    puffer_legal::check_legal(&imported, &flow.placement, &zeros).expect("legal");
    let report = evaluate(&imported, &flow.placement);
    assert!(report.wirelength > 0.0);

    // And it archives in the native format, too.
    let mut buf = Vec::new();
    write_design(&imported, &mut buf).expect("archive");
    assert!(!buf.is_empty());
}
