//! Fault injection: hostile inputs and mid-run failures must surface as
//! typed errors or recovered results — never a process abort.
//!
//! Covers the resilience layer end to end: corrupt/truncated design files
//! and checkpoint journals, NaN coordinates at every stage boundary,
//! zero-capacity routing grids, a panicking exploration objective, and
//! divergence recovery inside the full PUFFER flow.

use puffer::{
    CheckpointPolicy, FlowCheckpoint, FlowStage, PufferConfig, PufferError, PufferPlacer,
};
use puffer_db::design::Design;
use puffer_db::geom::Point;
use puffer_db::DbError;
use puffer_explore::{explore_params, ExplorationConfig, ExploreError, ParamSpec, Space};
use puffer_gen::{generate, GeneratorConfig};
use puffer_legal::LegalizeError;
use puffer_pad::PaddingState;
use puffer_place::{GlobalPlacer, PlacerConfig};
use puffer_route::{GlobalRouter, RouteError, RouterConfig};
use std::path::PathBuf;

fn quick_config() -> PufferConfig {
    let mut c = PufferConfig::default();
    c.placer.max_iters = 120;
    c.placer.stop_overflow = 0.15;
    c.strategy.tau = 0.30;
    c.strategy.max_rounds = 2;
    c
}

fn small_design() -> Design {
    generate(&GeneratorConfig {
        num_cells: 250,
        num_nets: 280,
        num_macros: 1,
        utilization: 0.6,
        hotspot: 0.4,
        ..GeneratorConfig::default()
    })
    .expect("generate")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-fault-injection").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// --- corrupt and truncated inputs -----------------------------------------

#[test]
fn corrupt_native_design_is_a_parse_error() {
    let cases = [
        "not a design at all",
        "design d\ntech abc 1.0\n",                        // non-numeric tech
        "design d\ntech 1.0 0.5\ncell c0 0.0 1.0 movable", // zero-area cell
        "design d\ntech 1.0 0.5\ncell c0 NaN 1.0 movable", // NaN-sized cell
        "design d\ntech 1.0 0.5\nnet n0 -1.0",             // negative net weight
        "design d\ntech 1.0 0.5\npin 0 0 0.0 0.0",         // pin to nothing
    ];
    for text in cases {
        let err = puffer_db::io::read_design(text.as_bytes())
            .expect_err(&format!("accepted corrupt input: {text:?}"));
        assert!(
            matches!(err, DbError::Parse { .. } | DbError::Validate(_)),
            "wanted a parse/validate error for {text:?}, got {err}"
        );
    }
}

#[test]
fn truncated_native_design_is_an_error_not_a_panic() {
    // Serialize a real design, then cut it off mid-file at several points.
    let d = small_design();
    let mut full = Vec::new();
    puffer_db::io::write_design(&d, &mut full).unwrap();
    for frac in [0.1, 0.5, 0.9] {
        let cut = (full.len() as f64 * frac) as usize;
        // Truncation may land mid-line; both a clean parse error and a
        // "missing section" error are acceptable — a panic is not.
        let _ = puffer_db::io::read_design(&full[..cut]);
    }
}

#[test]
fn corrupt_bookshelf_nodes_are_parse_errors() {
    let nodes_cases = [
        "UCLA nodes 1.0\na 0 1\n",   // zero width
        "UCLA nodes 1.0\na nan 1\n", // NaN width
        "UCLA nodes 1.0\na 2\n",     // missing height
    ];
    for nodes in nodes_cases {
        let err = puffer_db::bookshelf::parse_bookshelf("t", nodes, "UCLA nets 1.0\n", "", "")
            .expect_err(&format!("accepted corrupt nodes: {nodes:?}"));
        assert!(matches!(err, DbError::Parse { .. }), "{err}");
    }
}

#[test]
fn truncated_checkpoint_journal_is_a_resume_error() {
    let dir = tmp_dir("truncated-journal");
    let d = small_design();
    let placer = PufferPlacer::new(quick_config());
    let journal = dir.join("run.pj");
    placer
        .place_with_checkpoints(&d, &CheckpointPolicy::new(journal.clone()))
        .expect("checkpointed place");

    // Cut the journal off before the `end` marker and try to resume.
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::write(&journal, &text[..text.len() / 2]).unwrap();
    let err = placer.resume(&d, &journal).unwrap_err();
    assert!(matches!(err, PufferError::Journal(_)), "{err}");

    // Outright garbage fails the same way.
    std::fs::write(&journal, "definitely not a checkpoint").unwrap();
    let err = placer.resume(&d, &journal).unwrap_err();
    assert!(matches!(err, PufferError::Journal(_)), "{err}");
}

#[test]
fn checkpoint_for_a_different_design_is_a_resume_error() {
    let dir = tmp_dir("wrong-design");
    let d = small_design();
    let journal = dir.join("run.pj");
    PufferPlacer::new(quick_config())
        .place_with_checkpoints(&d, &CheckpointPolicy::new(journal.clone()))
        .expect("checkpointed place");

    let other = generate(&GeneratorConfig {
        num_cells: 90,
        num_nets: 100,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let err = PufferPlacer::new(quick_config())
        .resume(&other, &journal)
        .unwrap_err();
    assert!(matches!(err, PufferError::Resume(_)), "{err}");
}

// --- NaN coordinates at stage boundaries ----------------------------------

#[test]
fn nan_coordinates_are_rejected_by_legalizer_and_router() {
    let d = small_design();
    let mut p = d.initial_placement();
    let victim = d.netlist().movable_cells().next().unwrap();
    p.set(victim, Point::new(f64::NAN, f64::INFINITY));

    let pad = vec![0u32; d.netlist().num_cells()];
    let err = puffer_legal::legalize(&d, &p, &pad).unwrap_err();
    assert!(matches!(err, LegalizeError::BadInput(_)), "{err}");

    let router = GlobalRouter::new(&d, RouterConfig::default());
    let err = router.try_route(&d, &p).unwrap_err();
    assert!(matches!(err, RouteError::NonFinitePlacement { .. }), "{err}");
}

#[test]
fn nan_divergence_inside_the_flow_recovers_to_a_flow_result() {
    // Poison the global-placement state mid-flow via a checkpoint: the
    // divergence sentinel must roll back / back off and the flow must
    // still deliver a complete, legal FlowResult.
    let d = small_design();
    let config = quick_config();

    // A mid-flow snapshot whose placement is partially NaN.
    let mut poisoned = d.initial_placement();
    for id in d.netlist().movable_cells().take(25) {
        poisoned.set(id, Point::new(f64::NAN, f64::NAN));
    }
    let placer = GlobalPlacer::with_placement(
        &d,
        PlacerConfig {
            max_iters: config.placer.max_iters,
            stop_overflow: config.placer.stop_overflow,
            ..PlacerConfig::default()
        },
        poisoned,
    )
    .expect("placer");
    let checkpoint = FlowCheckpoint::capture(
        &d,
        FlowStage::GlobalPlace,
        placer.snapshot(),
        PaddingState::new(d.netlist().num_cells()),
    );

    let result = PufferPlacer::new(config)
        .place_from(&d, checkpoint, None)
        .expect("flow must recover, not die");
    assert!(result.hpwl.is_finite());
    for id in d.netlist().movable_cells() {
        let pos = result.placement.pos(id);
        assert!(pos.x.is_finite() && pos.y.is_finite(), "cell at {pos}");
    }
    let zeros = vec![0u32; d.netlist().num_cells()];
    puffer_legal::check_legal(&d, &result.placement, &zeros).expect("legal after recovery");
}

// --- zero-capacity congestion grids ----------------------------------------

#[test]
fn zero_capacity_grid_is_a_route_error() {
    use puffer_db::geom::Rect;
    use puffer_db::grid::Grid;
    let d = small_design();
    let r = d.region();
    let grid = puffer_route::RoutingGrid::new(
        Grid::filled(r, 8, 8, 0.0),
        Grid::filled(r, 8, 8, 0.0),
    );
    assert_eq!(grid.total_capacity(puffer_route::Dir::H), 0.0);
    let _ = Rect::new(0.0, 0.0, 1.0, 1.0);

    // A router whose derates consume all capacity must refuse to report
    // meaningless overflow ratios.
    let router = GlobalRouter::new(
        &d,
        RouterConfig {
            power_derate: 1.0, // 100% of tracks eaten by the power grid
            ..RouterConfig::default()
        },
    );
    match router.try_route(&d, &d.initial_placement()) {
        Err(RouteError::ZeroCapacity(_)) => {}
        Err(other) => panic!("wanted ZeroCapacity, got {other}"),
        // Some blockage models keep a sliver of capacity; finite metrics
        // are acceptable then.
        Ok(report) => assert!(report.hof_pct.is_finite() && report.vof_pct.is_finite()),
    }
}

// --- panicking exploration objective ----------------------------------------

#[test]
fn panicking_exploration_objective_is_contained() {
    let space = Space::new(vec![
        ParamSpec::continuous("a", 0.0, 10.0),
        ParamSpec::continuous("b", 0.0, 10.0),
    ]);
    let outcome = explore_params(
        &space,
        |v| {
            if v[0] > 5.0 {
                panic!("objective crashed at {v:?}");
            }
            (v[0] - 2.0).powi(2) + (v[1] - 3.0).powi(2)
        },
        &ExplorationConfig {
            max_evals: 80,
            early_stop: 80,
            ..Default::default()
        },
    )
    .expect("exploration must survive the crashing corner");
    assert!(outcome.failed_trials > 0, "crash corner never hit");
    assert!(outcome.best_value < 10.0, "best {}", outcome.best_value);
}

#[test]
fn hopeless_exploration_objective_is_a_typed_error() {
    let space = Space::new(vec![ParamSpec::continuous("a", 0.0, 1.0)]);
    let err = explore_params(
        &space,
        |_: &[f64]| -> f64 { panic!("always broken") },
        &ExplorationConfig {
            max_evals: 30,
            max_consecutive_failures: 6,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExploreError::AllTrialsFailed { .. }), "{err}");
}

// --- deadline cancellation at every stage -----------------------------------

#[test]
fn cancel_mid_gp_yields_best_so_far_and_auditable_artifacts() {
    use puffer::{StageObserver, StagePoint};
    use puffer_budget::{Budget, CancelToken};

    let dir = tmp_dir("cancel-mid-gp");
    let d = small_design();
    let journal = dir.join("run.pj");
    let metrics = dir.join("run.jsonl");
    let trace = puffer_trace::Trace::with_sink(&metrics).unwrap();

    // The observer trips the token once global placement is underway, so
    // the cancellation lands mid-GP at the next loop-boundary check.
    let token = CancelToken::new();
    let trip = token.clone();
    let result = PufferPlacer::new(quick_config())
        .with_budget(Budget::unbounded().with_token(token))
        .with_trace(trace.clone())
        .with_observer(StageObserver::new(move |r| {
            if r.point == StagePoint::Init {
                trip.cancel();
            }
            Ok(())
        }))
        .place_with_checkpoints(&d, &CheckpointPolicy::new(journal.clone()))
        .expect("cancellation must degrade, not fail");
    trace.write_summary();
    trace.flush().unwrap();

    assert!(result.cancelled, "flow must report the cancellation");
    assert!(
        result.gp_iterations < quick_config().placer.max_iters,
        "cancel must cut the run short"
    );
    assert!(result.hpwl.is_finite());
    let zeros = vec![0u32; d.netlist().num_cells()];
    puffer_legal::check_legal(&d, &result.placement, &zeros).expect("best-so-far must be legal");
    puffer_audit::audit_run(&journal, &metrics).expect("artifacts must stay consistent");
}

#[test]
fn cancel_mid_route_reports_the_routing_so_far() {
    use puffer_budget::{Budget, CancelToken};

    let d = small_design();
    let p = d.initial_placement();
    let token = CancelToken::new();
    token.cancel();
    // The router checks its budget between rip-up rounds and rerouted
    // nets: a cancelled token stops refinement but the initial-routing
    // report must still be complete and finite.
    let report = puffer::evaluate_bounded(
        &d,
        &p,
        &RouterConfig::default(),
        &Budget::unbounded().with_token(token),
        &puffer_trace::Trace::disabled(),
    );
    assert!(report.hof_pct.is_finite() && report.vof_pct.is_finite());
    assert!(report.wirelength.is_finite());
    let unbounded = puffer::evaluate(&d, &p);
    assert!(
        report.rounds <= unbounded.rounds,
        "cancelled routing must not refine longer than the free run"
    );
}

#[test]
fn cancel_mid_smbo_keeps_the_best_completed_trial() {
    use puffer_budget::{Budget, CancelToken};
    use puffer_explore::explore_params_bounded;

    let space = Space::new(vec![
        ParamSpec::continuous("a", 0.0, 10.0),
        ParamSpec::continuous("b", 0.0, 10.0),
    ]);
    let token = CancelToken::new();
    let trip = token.clone();
    let mut trials = 0usize;
    let outcome = explore_params_bounded(
        &space,
        |v: &[f64]| {
            trials += 1;
            if trials == 3 {
                trip.cancel(); // expires mid-search, after three results
            }
            (v[0] - 2.0).powi(2) + (v[1] - 3.0).powi(2)
        },
        &ExplorationConfig {
            max_evals: 40,
            early_stop: 40,
            ..Default::default()
        },
        &puffer_trace::Trace::disabled(),
        &Budget::unbounded().with_token(token),
        None,
    )
    .expect("cancellation must return the best-so-far, not an error");
    assert!(outcome.evals <= 3, "search must stop at the cancellation");
    assert!(outcome.stopped_early);
    assert!(outcome.best_value.is_finite());
}

// --- kill + resume determinism ----------------------------------------------

#[test]
fn killed_flow_resumed_from_journal_matches_uninterrupted_run() {
    let dir = tmp_dir("kill-resume");
    let d = small_design();
    let config = quick_config();

    let uninterrupted = PufferPlacer::new(config.clone())
        .place(&d)
        .expect("uninterrupted");

    // keep_history preserves every periodic checkpoint: each file is
    // byte-for-byte what a kill right after that write would leave behind.
    let journal = dir.join("run.pj");
    let policy = CheckpointPolicy {
        path: journal.clone(),
        every: 30,
        keep_history: true,
    };
    PufferPlacer::new(config.clone())
        .place_with_checkpoints(&d, &policy)
        .expect("journaled run");

    let kill_point = dir.join("run.pj.iter000030");
    assert!(kill_point.exists(), "periodic checkpoint missing");
    let resumed = PufferPlacer::new(config)
        .resume(&d, &kill_point)
        .expect("resume");

    assert_eq!(resumed.placement, uninterrupted.placement);
    assert_eq!(resumed.hpwl, uninterrupted.hpwl);
}
