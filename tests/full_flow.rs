//! End-to-end integration: generator → PUFFER flow → legality → router.

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_gen::{generate, presets, GeneratorConfig};

fn quick_config() -> PufferConfig {
    let mut c = PufferConfig::default();
    c.placer.max_iters = 150;
    c.placer.stop_overflow = 0.15;
    c.strategy.tau = 0.30;
    c.strategy.max_rounds = 3;
    c
}

#[test]
fn preset_benchmark_places_and_routes() {
    let design = generate(&presets::or1200(0.002).expect("preset")).expect("generate");
    let result = PufferPlacer::new(quick_config())
        .place(&design)
        .expect("place");
    // Physical legality.
    let zeros = vec![0u32; design.netlist().num_cells()];
    puffer_legal::check_legal(&design, &result.placement, &zeros).expect("legal");
    // Routable with finite metrics.
    let report = evaluate(&design, &result.placement);
    assert!(report.hof_pct.is_finite() && report.vof_pct.is_finite());
    assert!(report.wirelength > 0.0);
}

#[test]
fn flow_moves_cells_off_the_initial_cluster() {
    let design = generate(&GeneratorConfig {
        num_cells: 300,
        num_nets: 330,
        num_macros: 1,
        utilization: 0.6,
        ..GeneratorConfig::default()
    })
    .expect("generate");
    let initial = design.initial_placement();
    let result = PufferPlacer::new(quick_config())
        .place(&design)
        .expect("place");
    // Spreading must actually have happened.
    let moved = design
        .netlist()
        .movable_cells()
        .filter(|&id| initial.pos(id).l1_distance(result.placement.pos(id)) > 1.0)
        .count();
    assert!(
        moved > design.stats().movable_cells / 2,
        "only {moved} cells moved"
    );
}

#[test]
fn global_placement_density_is_bounded() {
    let design = generate(&GeneratorConfig {
        num_cells: 300,
        num_nets: 330,
        num_macros: 0,
        utilization: 0.6,
        ..GeneratorConfig::default()
    })
    .expect("generate");
    let result = PufferPlacer::new(quick_config())
        .place(&design)
        .expect("place");
    assert!(
        result.final_overflow <= 0.16,
        "global placement did not converge: overflow {}",
        result.final_overflow
    );
    // The legal placement's raw density must also be near target.
    let model = puffer_place::DensityModel::new(&design, 64, 64);
    let widths: Vec<f64> = design.netlist().cells().iter().map(|c| c.width).collect();
    let eval = model.evaluate(design.netlist(), &result.placement, &widths, 1.0);
    assert!(
        eval.overflow < 0.35,
        "legal density overflow {}",
        eval.overflow
    );
}

#[test]
fn padding_area_respects_legal_budget() {
    let design = generate(&GeneratorConfig {
        num_cells: 400,
        num_nets: 440,
        num_macros: 1,
        utilization: 0.75,
        hotspot: 0.8,
        ..GeneratorConfig::default()
    })
    .expect("generate");
    let mut cfg = quick_config();
    cfg.strategy.legal_budget = 0.05;
    let result = PufferPlacer::new(cfg).place(&design).expect("place");
    // Implicit: legalization succeeded with the 5% cap. The padded rows in
    // the legal placement must not overlap even with padding reapplied by
    // the checker if we reconstruct zero padding (physical check).
    let zeros = vec![0u32; design.netlist().num_cells()];
    puffer_legal::check_legal(&design, &result.placement, &zeros).expect("legal");
    assert!(result.hpwl > 0.0);
}
