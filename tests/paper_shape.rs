//! Integration: the qualitative claims of the paper's evaluation, checked
//! on small instances (see EXPERIMENTS.md for the full-scale protocol).

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_gen::{generate, GeneratorConfig};

/// A congested benchmark small enough for a non-release test run.
fn congested_design() -> puffer_db::design::Design {
    generate(&GeneratorConfig {
        name: "congested".into(),
        num_cells: 900,
        num_nets: 1000,
        num_macros: 2,
        utilization: 0.82,
        hotspot: 0.9,
        // Pinned so the instance is congested-but-rescuable: the plain
        // flow overflows and the padded flow both clears it and stays
        // within the wirelength budget, with margin to spare.
        seed: 54,
        ..GeneratorConfig::default()
    })
    .expect("generate")
}

fn flow_config(rounds: usize) -> PufferConfig {
    let mut c = PufferConfig::default();
    c.placer.max_iters = 280;
    c.placer.stop_overflow = 0.10;
    c.strategy.max_rounds = rounds;
    c
}

#[test]
fn padding_improves_routability_over_plain_placement() {
    let design = congested_design();
    let plain = PufferPlacer::new(flow_config(0))
        .place(&design)
        .expect("plain");
    let padded = PufferPlacer::new(flow_config(6))
        .place(&design)
        .expect("padded");
    let plain_report = evaluate(&design, &plain.placement);
    let padded_report = evaluate(&design, &padded.placement);
    let plain_of = plain_report.hof_pct + plain_report.vof_pct;
    let padded_of = padded_report.hof_pct + padded_report.vof_pct;
    assert!(
        padded_of <= plain_of + 1e-9,
        "padding should not hurt routability: {padded_of:.3} vs {plain_of:.3}"
    );
}

#[test]
fn padding_costs_bounded_wirelength() {
    // The paper accepts ~4.5% extra wirelength for routability; allow a
    // loose 15% on the tiny instance.
    let design = congested_design();
    let plain = PufferPlacer::new(flow_config(0))
        .place(&design)
        .expect("plain");
    let padded = PufferPlacer::new(flow_config(6))
        .place(&design)
        .expect("padded");
    assert!(
        padded.hpwl <= plain.hpwl * 1.15,
        "padding wirelength cost too high: {} vs {}",
        padded.hpwl,
        plain.hpwl
    );
}

#[test]
fn router_and_estimator_agree_on_hotspot_location() {
    // The congestion estimator (§III-A) must point at the same region the
    // router ends up congested in — that is the premise of the whole
    // feedback loop.
    use puffer_congest::{CongestionEstimator, EstimatorConfig};
    let design = congested_design();
    let result = PufferPlacer::new(flow_config(0))
        .place(&design)
        .expect("place");
    let est = CongestionEstimator::new(&design, EstimatorConfig::default());
    let est_map = est.estimate(&design, &result.placement);
    let route_map = evaluate(&design, &result.placement).congestion;

    // Correlate the top-decile congested Gcells of both maps.
    let nx = est_map.nx().min(route_map.nx());
    let ny = est_map.ny().min(route_map.ny());
    let mut est_scores: Vec<((usize, usize), f64)> = Vec::new();
    let mut route_scores: Vec<((usize, usize), f64)> = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            est_scores.push(((ix, iy), est_map.cg(ix, iy)));
            route_scores.push(((ix, iy), route_map.cg(ix, iy)));
        }
    }
    est_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    route_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    let k = (nx * ny / 10).max(4);
    let est_top: std::collections::HashSet<_> = est_scores[..k].iter().map(|(c, _)| *c).collect();
    let route_top: std::collections::HashSet<_> =
        route_scores[..k].iter().map(|(c, _)| *c).collect();
    let overlap = est_top.intersection(&route_top).count();
    // Random agreement would be ~k/10; demand substantially better.
    assert!(
        overlap * 3 >= k,
        "estimator and router disagree: {overlap}/{k} top Gcells shared"
    );
}

#[test]
fn evaluator_is_shared_and_deterministic_across_flows() {
    let design = congested_design();
    let result = PufferPlacer::new(flow_config(3))
        .place(&design)
        .expect("place");
    let a = evaluate(&design, &result.placement);
    let b = evaluate(&design, &result.placement);
    assert_eq!(a.hof_pct, b.hof_pct);
    assert_eq!(a.wirelength, b.wirelength);
}
