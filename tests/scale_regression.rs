//! Million-cell scale regression (nightly-style, `--features expensive`).
//!
//! Streams a synthetic 1M-cell Bookshelf design through the streaming
//! parser and asserts the process peak RSS stays under a documented
//! ceiling. The fixture is written line-by-line through a `BufWriter`
//! (never materialized in memory) and parsed from `BufReader`s, so the
//! measured high-water mark is the parser plus the netlist itself — the
//! quantity the streaming front-end exists to bound.
//!
//! `scripts/ci.sh` runs this as a nightly smoke under `PUFFER_NIGHTLY=1`.
#![cfg(feature = "expensive")]

use puffer_db::bookshelf::parse_bookshelf_streaming;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;

/// Cells (and nets) in the synthetic design; pins are 3x this.
const CELLS: usize = 1_000_000;

/// Peak-RSS ceiling for streaming ingestion of the 1M-cell design. The
/// resident netlist (cells + nets + struct-of-arrays pins + CSR
/// membership + the name interning map) measures ~363 MiB in a debug
/// test binary; the ceiling sits ~2x above that to catch an accidental
/// whole-file slurp or a superlinear structure, not allocator noise.
const MAX_RSS_BYTES: u64 = 768 * 1024 * 1024;

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-scale-regression");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    dir
}

/// Streams the `.nodes` file: 1M movable cells, constant footprint.
fn write_nodes(path: &PathBuf) {
    let mut w = BufWriter::new(File::create(path).expect("create .nodes"));
    writeln!(w, "UCLA nodes 1.0").unwrap();
    writeln!(w, "NumNodes : {CELLS}").unwrap();
    writeln!(w, "NumTerminals : 0").unwrap();
    for i in 0..CELLS {
        writeln!(w, "c{i} 0.4 1.0").unwrap();
    }
    w.flush().unwrap();
}

/// Streams the `.nets` file: one degree-3 net per cell, connecting each
/// cell to two pseudo-random neighbours (fixed affine maps, so the file
/// is deterministic without holding any state).
fn write_nets(path: &PathBuf) {
    let mut w = BufWriter::new(File::create(path).expect("create .nets"));
    writeln!(w, "UCLA nets 1.0").unwrap();
    writeln!(w, "NumNets : {CELLS}").unwrap();
    writeln!(w, "NumPins : {}", 3 * CELLS).unwrap();
    for i in 0..CELLS {
        writeln!(w, "NetDegree : 3 n{i}").unwrap();
        writeln!(w, " c{i} B : 0 0").unwrap();
        writeln!(w, " c{} B : 0.1 0.2", (i * 7 + 1) % CELLS).unwrap();
        writeln!(w, " c{} B : -0.1 0.3", (i * 13 + 5) % CELLS).unwrap();
    }
    w.flush().unwrap();
}

#[test]
fn million_cell_streaming_ingestion_stays_under_the_rss_ceiling() {
    let dir = fixture_dir();
    let nodes_path = dir.join("million.nodes");
    let nets_path = dir.join("million.nets");
    write_nodes(&nodes_path);
    write_nets(&nets_path);

    let design = parse_bookshelf_streaming(
        "million",
        BufReader::new(File::open(&nodes_path).expect("open .nodes")),
        BufReader::new(File::open(&nets_path).expect("open .nets")),
        // No .pl / .scl: the parser synthesizes a square region sized for
        // the movable area, exactly like `read_aux` on a missing file.
        &b""[..],
        &b""[..],
    )
    .expect("streaming parse");

    let nl = design.netlist();
    assert_eq!(nl.num_cells(), CELLS);
    assert_eq!(nl.num_nets(), CELLS);
    assert_eq!(nl.num_pins(), 3 * CELLS);
    // Spot-check one net's membership against the generating maps.
    let (id, _) = nl
        .iter_nets()
        .nth(17)
        .expect("net 17 exists");
    let pins: Vec<usize> = nl
        .net_pins(id)
        .iter()
        .map(|&p| nl.pin(p).cell.0 as usize)
        .collect();
    assert_eq!(pins, vec![17, (17 * 7 + 1) % CELLS, (17 * 13 + 5) % CELLS]);

    let Some(peak) = puffer_budget::mem::peak_rss_bytes() else {
        eprintln!("skipping RSS assertion: /proc/self/status unavailable");
        return;
    };
    eprintln!(
        "[scale] {CELLS} cells ingested, peak RSS {:.0} MiB (ceiling {:.0} MiB)",
        peak as f64 / (1 << 20) as f64,
        MAX_RSS_BYTES as f64 / (1 << 20) as f64
    );
    assert!(
        peak <= MAX_RSS_BYTES,
        "peak RSS {peak} exceeds the documented {MAX_RSS_BYTES}-byte ceiling"
    );

    drop(design);
    let _ = std::fs::remove_file(&nodes_path);
    let _ = std::fs::remove_file(&nets_path);
}
