//! Golden test for the telemetry pipeline: a `place --metrics` run on a
//! tiny preset must produce schema-valid JSONL whose contents are
//! consistent with the flow result — one `place.iter` record per GP
//! iteration, the full stage-span set, and top-level stage times that
//! sum to (within tolerance) the reported runtime.

use puffer_trace::{read_jsonl, ParsedRecord};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-metrics-golden");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    puffer_cli::run(&args, &mut out).unwrap_or_else(|e| panic!("cli failed: {e}"));
    out
}

#[test]
fn metrics_run_is_schema_valid_and_consistent() {
    let design = tmp("golden.pd");
    let placed = tmp("golden.pl");
    let metrics = tmp("golden.jsonl");
    run_cli(&[
        "gen",
        "--preset",
        "or1200",
        "--scale",
        "0.003",
        "-o",
        design.to_str().unwrap(),
    ]);
    run_cli(&[
        "place",
        design.to_str().unwrap(),
        "-o",
        placed.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);

    let records = read_jsonl(&metrics).expect("metrics must parse as JSONL");
    assert!(!records.is_empty());

    // Schema: every record has a kind ("t") and an elapsed_s timestamp,
    // and the timestamps are monotonically non-decreasing (append order).
    let mut prev = 0.0;
    for r in &records {
        assert!(r.kind().is_some(), "record without kind");
        let e = r.num("elapsed_s").expect("record without elapsed_s");
        assert!(e >= prev, "elapsed_s went backwards: {e} < {prev}");
        prev = e;
    }

    let of_kind = |k: &str| -> Vec<&ParsedRecord> {
        records.iter().filter(|r| r.kind() == Some(k)).collect()
    };

    // One flow.done; one place.iter per GP iteration it reports.
    let done = of_kind("flow.done");
    assert_eq!(done.len(), 1);
    let done = done[0];
    let gp_iterations = done.num("gp_iterations").unwrap() as usize;
    let pad_rounds = done.num("pad_rounds").unwrap() as usize;
    let runtime_s = done.num("runtime_s").unwrap();
    assert!(gp_iterations >= 1);
    assert!(runtime_s > 0.0);
    assert_eq!(of_kind("place.iter").len(), gp_iterations);

    // Iteration indices are 1..=gp_iterations in order, with finite HPWL.
    for (i, r) in of_kind("place.iter").iter().enumerate() {
        assert_eq!(r.num("iter"), Some((i + 1) as f64));
        assert!(r.num("hpwl").unwrap().is_finite());
        assert!(r.num("overflow").unwrap().is_finite());
    }

    // One pad.round (and one congest.round) per padding round.
    assert_eq!(of_kind("pad.round").len(), pad_rounds);
    assert_eq!(of_kind("congest.round").len(), pad_rounds);

    // The summary span records cover all stages, and the top-level stage
    // times sum to the flow runtime within tolerance. (Spans nest, so
    // only top-level labels — no '/' — are summed.)
    let spans = of_kind("span");
    let label = |r: &ParsedRecord| r.str_field("label").unwrap().to_string();
    for stage in ["init", "gp", "legal", "gp/pad"] {
        assert!(
            spans.iter().any(|r| label(r) == stage),
            "missing span record for stage {stage:?}"
        );
    }
    let stage_sum: f64 = spans
        .iter()
        .filter(|r| !label(r).contains('/'))
        .map(|r| r.num("total_s").unwrap())
        .sum();
    let tolerance = 0.25 * runtime_s + 0.05;
    assert!(
        (stage_sum - runtime_s).abs() <= tolerance,
        "stage times {stage_sum:.3}s inconsistent with runtime {runtime_s:.3}s"
    );

    // The gp/pad span count matches the padding rounds.
    let pad_span = spans
        .iter()
        .find(|r| label(r) == "gp/pad")
        .expect("gp/pad span");
    assert_eq!(pad_span.num("count"), Some(pad_rounds as f64));

    // The CLI validator agrees.
    let out = run_cli(&["trace", metrics.to_str().unwrap(), "--check"]);
    assert!(out.contains("check OK"), "{out}");
}

/// Golden test for the stall watchdog: a deterministically stalled stage
/// (the chaos `slow-stage` injection) must trip the watchdog, the metrics
/// JSONL must record the `watchdog.stall` event with its full schema, and
/// the flow must finish as a degraded (cancelled) run — not a hang.
#[test]
fn stalled_stage_emits_a_watchdog_stall_record() {
    use puffer::{PufferConfig, PufferPlacer};
    use puffer_budget::{ChaosPlan, FaultClass, StallWatchdog};
    use puffer_gen::{generate, GeneratorConfig};
    use std::time::Duration;

    let design = generate(&GeneratorConfig {
        num_cells: 250,
        num_nets: 280,
        utilization: 0.6,
        ..GeneratorConfig::default()
    })
    .unwrap();
    let metrics = tmp("watchdog.jsonl");
    let trace = puffer_trace::Trace::with_sink(&metrics).unwrap();

    let mut config = PufferConfig::default();
    config.placer.max_iters = 60;
    let result = PufferPlacer::new(config)
        .with_trace(trace.clone())
        .with_watchdog(StallWatchdog::new(Duration::from_millis(50)))
        .with_chaos(ChaosPlan {
            class: FaultClass::SlowStage,
            at: 5,
            magnitude: 400,
        })
        .place(&design)
        .expect("a tripped watchdog degrades; it must not fail the flow");
    trace.write_summary();
    trace.flush().unwrap();
    assert!(result.cancelled, "watchdog must demote the stalled run");

    let records = read_jsonl(&metrics).expect("metrics must parse as JSONL");
    let stall = records
        .iter()
        .find(|r| r.kind() == Some("watchdog.stall"))
        .expect("metrics must record the stall event");
    assert_eq!(stall.str_field("stage"), Some("gp"));
    assert_eq!(stall.str_field("action"), Some("degrade"));
    assert!(stall.num("stalled_s").unwrap() >= 0.05);
    assert!(stall.num("window_s").unwrap() > 0.0);
    assert!(stall.num("iter").unwrap() >= 1.0);
    assert!(
        records.iter().any(|r| r.kind() == Some("chaos.inject")),
        "the injected stall must be visible in the record stream"
    );

    // The schema checker accepts the stall/injection records.
    let out = run_cli(&["trace", metrics.to_str().unwrap(), "--check"]);
    assert!(out.contains("check OK"), "{out}");
}
