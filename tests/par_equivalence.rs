//! Deterministic-parallelism equivalence suite: every GP kernel routed
//! through `puffer-par` must produce **bit-identical** results for any
//! thread count, and a full flow run at `--threads 4` must write a
//! byte-identical checkpoint journal to a `--threads 1` run.
//!
//! Bitwise comparison (`f64::to_bits`) is deliberate: approximate equality
//! would hide reduction-order drift that breaks checkpoint/resume, golden
//! metrics, and SMBO trajectory reproducibility.

use puffer::{CheckpointPolicy, PufferConfig, PufferPlacer};
use puffer_db::design::{Design, Placement};
use puffer_db::geom::Point;
use puffer_fft::{
    dct2, dct3, dst3_shifted, transform2d, transform2d_mixed, transform2d_mixed_threaded,
    transform2d_threaded,
};
use puffer_gen::{generate, GeneratorConfig};
use puffer_place::{wa_wirelength_grad_threaded, DensityModel};
use puffer_rng::StdRng;

const THREADS: [usize; 4] = [1, 2, 3, 8];

fn test_design(cells: usize, nets: usize, seed: u64) -> Design {
    generate(&GeneratorConfig {
        num_cells: cells,
        num_nets: nets,
        num_macros: 2,
        hotspot: 0.5,
        seed,
        ..GeneratorConfig::default()
    })
    .unwrap()
}

/// A deterministic semi-spread placement exercising interior and boundary
/// bins alike.
fn jittered_placement(design: &Design, seed: u64) -> Placement {
    let mut rng = StdRng::seed_from_u64(seed);
    let region = design.region();
    let mut p = design.initial_placement();
    for (id, cell) in design.netlist().iter_cells() {
        if !cell.is_movable() {
            continue;
        }
        let x = region.xl + rng.next_f64() * region.width();
        let y = region.yl + rng.next_f64() * region.height();
        p.set(id, Point::new(x, y));
    }
    p
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn wirelength_gradient_is_bit_identical_across_thread_counts() {
    for seed in [1u64, 7] {
        let d = test_design(600, 700, seed);
        let p = jittered_placement(&d, seed ^ 0xABCD);
        let base = wa_wirelength_grad_threaded(d.netlist(), &p, 4.0, 1);
        for t in THREADS {
            let got = wa_wirelength_grad_threaded(d.netlist(), &p, 4.0, t);
            assert_eq!(
                got.value.to_bits(),
                base.value.to_bits(),
                "seed {seed} threads {t}: value differs"
            );
            assert_eq!(
                bits(&got.grad_x),
                bits(&base.grad_x),
                "seed {seed} threads {t}: grad_x differs"
            );
            assert_eq!(
                bits(&got.grad_y),
                bits(&base.grad_y),
                "seed {seed} threads {t}: grad_y differs"
            );
        }
    }
}

#[test]
fn density_evaluation_is_bit_identical_across_thread_counts() {
    let d = test_design(500, 560, 3);
    let nl = d.netlist();
    let p = jittered_placement(&d, 99);
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let model = DensityModel::new(&d, 64, 64);
    let base = model.evaluate_threaded(nl, &p, &widths, 0.9, 1);
    for t in THREADS {
        let got = model.evaluate_threaded(nl, &p, &widths, 0.9, t);
        assert_eq!(
            got.energy.to_bits(),
            base.energy.to_bits(),
            "threads {t}: energy differs"
        );
        assert_eq!(
            got.overflow.to_bits(),
            base.overflow.to_bits(),
            "threads {t}: overflow differs"
        );
        assert_eq!(bits(&got.grad_x), bits(&base.grad_x), "threads {t}: grad_x");
        assert_eq!(bits(&got.grad_y), bits(&base.grad_y), "threads {t}: grad_y");
    }
}

#[test]
fn transforms_are_bit_identical_across_thread_counts() {
    let (nx, ny) = (64, 32);
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<f64> = (0..nx * ny).map(|_| rng.next_f64() * 20.0 - 10.0).collect();

    let serial_same = transform2d(&data, nx, ny, dct2);
    let serial_mixed = transform2d_mixed(&data, nx, ny, dst3_shifted, dct3);
    for t in THREADS {
        assert_eq!(
            bits(&transform2d_threaded(&data, nx, ny, dct2, t)),
            bits(&serial_same),
            "threads {t}: transform2d"
        );
        assert_eq!(
            bits(&transform2d_mixed_threaded(&data, nx, ny, dst3_shifted, dct3, t)),
            bits(&serial_mixed),
            "threads {t}: transform2d_mixed"
        );
    }
}

#[test]
fn full_place_run_writes_byte_identical_journal_for_1_and_4_threads() {
    let d = test_design(300, 340, 11);
    let dir = std::env::temp_dir().join("puffer-par-equivalence");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let run = |threads: usize| -> (Vec<u8>, Vec<(f64, f64)>) {
        let mut cfg = PufferConfig::default();
        cfg.placer.max_iters = 60;
        cfg.placer.stop_overflow = 0.15;
        cfg.placer.threads = threads;
        cfg.estimator.threads = threads;
        cfg.strategy.max_rounds = 1;
        let policy = CheckpointPolicy {
            path: dir.join(format!("run-t{threads}.pj")),
            every: 20,
            keep_history: false,
        };
        let result = PufferPlacer::new(cfg)
            .place_with_checkpoints(&d, &policy)
            .unwrap();
        let journal = std::fs::read(&policy.path).unwrap();
        let coords = (0..d.netlist().num_cells())
            .map(|i| {
                let p = result
                    .placement
                    .pos(puffer_db::netlist::CellId(i as u32));
                (p.x, p.y)
            })
            .collect();
        (journal, coords)
    };

    let (journal_1, coords_1) = run(1);
    let (journal_4, coords_4) = run(4);
    assert_eq!(
        journal_1, journal_4,
        "checkpoint journals must be byte-identical for --threads 1 vs 4"
    );
    for (i, (a, b)) in coords_1.iter().zip(&coords_4).enumerate() {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "cell {i} x differs");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "cell {i} y differs");
    }
}
