//! Seeded-corruption tests for the `puffer-audit` invariant checkers: each
//! [`Validate`] implementation must catch its corruption with a precise,
//! named violation — and must pass the same artifact uncorrupted.
//!
//! The netlist corruptions use `Netlist::from_raw_parts`, the deliberately
//! unvalidated constructor that exists exactly for this purpose; the
//! file-level corruptions damage real artifacts written by the flow.

use puffer::{CheckpointPolicy, PufferConfig, PufferPlacer};
use puffer_audit::{
    audit_metrics, audit_run, PadAudit, PlacementAudit, PlacementStage, Validate,
};
use puffer_db::design::Design;
use puffer_db::geom::{Point, Rect};
use puffer_db::netlist::{Cell, CellKind, Net, Netlist, Pin, PinId};
use puffer_db::tech::Technology;
use puffer_gen::{generate, GeneratorConfig};
use puffer_pad::{PaddingState, PaddingStrategy};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("puffer-audit-corruption").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_design() -> Design {
    generate(&GeneratorConfig {
        num_cells: 220,
        num_nets: 240,
        num_macros: 1,
        utilization: 0.6,
        hotspot: 0.4,
        ..GeneratorConfig::default()
    })
    .expect("generate")
}

/// Asserts that validating `subject` fails and that some violation carries
/// the expected check name.
fn assert_caught<V: Validate>(subject: &V, check: &str) {
    let report = subject.validate().expect_err("corruption must be caught");
    assert!(
        report.violations.iter().any(|v| v.check == check),
        "expected a '{check}' violation, got: {report}"
    );
}

// ---------------------------------------------------------------------------
// Netlist corruptions
// ---------------------------------------------------------------------------

/// A two-cell, one-net netlist assembled by hand so tests can corrupt it.
/// Membership lists (which pins each cell/net claims) are returned
/// separately because the struct-of-arrays netlist stores them in CSR
/// form, not inside `Cell`/`Net`.
type RawNetlist = (Vec<Cell>, Vec<Net>, Vec<Pin>, Vec<Vec<PinId>>, Vec<Vec<PinId>>);

fn raw_two_cell_netlist() -> RawNetlist {
    let cells = vec![
        Cell {
            name: "a".into(),
            width: 2.0,
            height: 1.0,
            kind: CellKind::Movable,
        },
        Cell {
            name: "b".into(),
            width: 2.0,
            height: 1.0,
            kind: CellKind::Movable,
        },
    ];
    let nets = vec![Net {
        name: "n".into(),
        weight: 1.0,
    }];
    let pins = vec![
        Pin {
            cell: puffer_db::netlist::CellId(0),
            net: puffer_db::netlist::NetId(0),
            offset: Point::ORIGIN,
        },
        Pin {
            cell: puffer_db::netlist::CellId(1),
            net: puffer_db::netlist::NetId(0),
            offset: Point::ORIGIN,
        },
    ];
    let cell_pins = vec![vec![PinId(0)], vec![PinId(1)]];
    let net_pins = vec![vec![PinId(0), PinId(1)]];
    (cells, nets, pins, cell_pins, net_pins)
}

fn design_of(netlist: Netlist) -> Design {
    Design::new(
        "corrupt",
        netlist,
        Technology::default(),
        Rect::new(0.0, 0.0, 40.0, 40.0),
    )
    .unwrap()
}

#[test]
fn pristine_raw_netlist_passes() {
    let (cells, nets, pins, cell_pins, net_pins) = raw_two_cell_netlist();
    let d = design_of(Netlist::from_raw_parts(cells, nets, pins, cell_pins, net_pins));
    d.validate().expect("uncorrupted design must validate");
}

#[test]
fn dangling_pin_is_detected() {
    let (cells, nets, mut pins, cell_pins, net_pins) = raw_two_cell_netlist();
    // A third pin exists in the pin table but neither its cell nor its net
    // lists it — wirelength and density would silently ignore it.
    pins.push(Pin {
        cell: puffer_db::netlist::CellId(0),
        net: puffer_db::netlist::NetId(0),
        offset: Point::ORIGIN,
    });
    let d = design_of(Netlist::from_raw_parts(cells, nets, pins, cell_pins, net_pins));
    assert_caught(&d, "dangling-pin");
}

#[test]
fn degenerate_weighted_net_is_detected() {
    let (cells, nets, pins, cell_pins, mut net_pins) = raw_two_cell_netlist();
    // Drop the net's second pin: weight 1 but degree 1 can never
    // contribute wirelength.
    net_pins[0].truncate(1);
    let d = design_of(Netlist::from_raw_parts(cells, nets, pins, cell_pins, net_pins));
    assert_caught(&d, "degenerate-net");
}

#[test]
fn pin_outside_cell_bounds_is_detected() {
    let (cells, nets, mut pins, cell_pins, net_pins) = raw_two_cell_netlist();
    pins[0].offset = Point::new(5.0, 0.0); // half-width is 1.0
    let d = design_of(Netlist::from_raw_parts(cells, nets, pins, cell_pins, net_pins));
    assert_caught(&d, "pin-outside-cell");
}

#[test]
fn zero_area_cell_is_detected() {
    let (mut cells, nets, pins, cell_pins, net_pins) = raw_two_cell_netlist();
    cells[1].width = 0.0;
    let d = design_of(Netlist::from_raw_parts(cells, nets, pins, cell_pins, net_pins));
    assert_caught(&d, "zero-area-cell");
}

#[test]
fn generated_design_passes_the_audit() {
    small_design().validate().expect("generator output is valid");
}

// ---------------------------------------------------------------------------
// Placement corruptions
// ---------------------------------------------------------------------------

#[test]
fn nan_coordinate_is_detected() {
    let d = small_design();
    let mut p = d.initial_placement();
    let victim = d.netlist().movable_cells().next().unwrap();
    p.set(victim, Point::new(f64::NAN, 1.0));
    let audit = PlacementAudit {
        design: &d,
        placement: &p,
        stage: PlacementStage::Global,
    };
    assert_caught(&audit, "finite-coords");
}

#[test]
fn cell_outside_core_is_detected() {
    let d = small_design();
    let mut p = d.initial_placement();
    let victim = d.netlist().movable_cells().next().unwrap();
    let r = d.region();
    p.set(victim, Point::new(r.xh + 100.0, r.yl));
    let audit = PlacementAudit {
        design: &d,
        placement: &p,
        stage: PlacementStage::Global,
    };
    assert_caught(&audit, "outside-core");

    // The uncorrupted initial placement passes at the same stage.
    let p = d.initial_placement();
    PlacementAudit {
        design: &d,
        placement: &p,
        stage: PlacementStage::Global,
    }
    .validate()
    .expect("initial placement is inside the core");
}

#[test]
fn truncated_placement_vector_is_detected() {
    let d = small_design();
    let p = puffer_db::design::Placement::zeroed(d.netlist().num_cells() - 1);
    let audit = PlacementAudit {
        design: &d,
        placement: &p,
        stage: PlacementStage::Global,
    };
    assert_caught(&audit, "cell-count");
}

// ---------------------------------------------------------------------------
// Padding corruptions
// ---------------------------------------------------------------------------

#[test]
fn negative_and_oversized_padding_are_detected() {
    let d = small_design();
    let n = d.netlist().num_cells();
    let strategy = PaddingStrategy::default();

    let mut state = PaddingState::new(n);
    state.pad[0] = -1.0;
    assert_caught(
        &PadAudit {
            design: &d,
            state: &state,
            strategy: &strategy,
        },
        "pad-width",
    );

    let mut state = PaddingState::new(n);
    state.round = 1;
    let victim = d.netlist().movable_cells().next().unwrap();
    let width = d.netlist().cell(victim).width;
    state.pad[victim.index()] = strategy.max_pad_widths * width * 10.0;
    state.pad_count[victim.index()] = 1;
    assert_caught(
        &PadAudit {
            design: &d,
            state: &state,
            strategy: &strategy,
        },
        "pad-cap",
    );

    // A fresh state passes.
    let state = PaddingState::new(n);
    PadAudit {
        design: &d,
        state: &state,
        strategy: &strategy,
    }
    .validate()
    .expect("fresh padding state is valid");
}

// ---------------------------------------------------------------------------
// Metrics-file corruptions
// ---------------------------------------------------------------------------

fn write_lines(path: &PathBuf, lines: &[&str]) {
    std::fs::write(path, lines.join("\n") + "\n").unwrap();
}

#[test]
fn mismatched_histogram_is_detected() {
    let dir = tmp_dir("histogram");
    let path = dir.join("bad.jsonl");
    // h_hist buckets 100 Gcells, v_hist only 99 — the same grid must
    // bucket the same count in both directions.
    write_lines(
        &path,
        &[
            r#"{"t":"congest.round","elapsed_s":0.1,"h_hist":[50,20,10,10,5,3,1,1],"v_hist":[50,20,10,10,5,3,1,0],"congested":2}"#,
        ],
    );
    let report = audit_metrics(&path).expect_err("mismatched histogram must be caught");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == "histogram-conservation"),
        "got: {report}"
    );

    // The consistent version passes.
    let good = dir.join("good.jsonl");
    write_lines(
        &good,
        &[
            r#"{"t":"congest.round","elapsed_s":0.1,"h_hist":[50,20,10,10,5,3,1,1],"v_hist":[49,21,10,10,5,3,1,1],"congested":2}"#,
        ],
    );
    let summary = audit_metrics(&good).expect("consistent histograms pass");
    assert_eq!(summary.gcells, Some(100));
}

#[test]
fn inconsistent_dirty_tracking_is_detected() {
    let dir = tmp_dir("dirty-tracking");
    // nets_dirty exceeding nets is impossible bookkeeping; so is a reuse
    // rate outside [0, 1] or a fractional count.
    let bad = dir.join("bad.jsonl");
    write_lines(
        &bad,
        &[
            r#"{"t":"congest.dirty","elapsed_s":0.1,"nets":100,"nets_dirty":120,"nets_rebuilt":130,"chunks":8,"chunks_dirty":9,"gcells_dirty":4,"rsmt_hits":10,"rsmt_misses":2.5,"reuse":1.7}"#,
        ],
    );
    let report = audit_metrics(&bad).expect_err("impossible dirty counts must be caught");
    let dirty: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.check == "dirty-tracking")
        .collect();
    assert!(
        dirty.len() >= 4,
        "expected nets_dirty>nets, chunks_dirty>chunks, fractional \
         rsmt_misses, and reuse out of range; got: {report}"
    );

    // A dirty net that was never rebuilt breaks incrementality.
    let unrebuilt = dir.join("unrebuilt.jsonl");
    write_lines(
        &unrebuilt,
        &[
            r#"{"t":"congest.dirty","elapsed_s":0.1,"nets":100,"nets_dirty":40,"nets_rebuilt":30,"chunks":8,"chunks_dirty":3,"gcells_dirty":4,"rsmt_hits":10,"rsmt_misses":2,"reuse":0.7}"#,
        ],
    );
    let report =
        audit_metrics(&unrebuilt).expect_err("dirty nets not rebuilt must be caught");
    assert!(
        report.violations.iter().any(|v| v.check == "dirty-tracking"),
        "got: {report}"
    );

    // Well-formed bookkeeping passes.
    let good = dir.join("good.jsonl");
    write_lines(
        &good,
        &[
            r#"{"t":"congest.dirty","elapsed_s":0.1,"nets":100,"nets_dirty":20,"nets_rebuilt":30,"chunks":8,"chunks_dirty":3,"gcells_dirty":4,"rsmt_hits":10,"rsmt_misses":2,"reuse":0.7}"#,
        ],
    );
    audit_metrics(&good).expect("consistent dirty tracking passes");
}

#[test]
fn grid_shrink_is_allowed_only_after_a_recorded_coarsening() {
    let dir = tmp_dir("histogram-coarsen");
    // An unexplained Gcell-count change across rounds is corruption...
    let bad = dir.join("bad.jsonl");
    write_lines(
        &bad,
        &[
            r#"{"t":"congest.round","elapsed_s":0.1,"h_hist":[50,20,10,10,5,3,1,1],"v_hist":[50,20,10,10,5,3,1,1],"congested":2}"#,
            r#"{"t":"congest.round","elapsed_s":0.2,"h_hist":[10,5,5,3,1,1,0,0],"v_hist":[10,5,5,3,1,1,0,0],"congested":1}"#,
        ],
    );
    let report = audit_metrics(&bad).expect_err("silent grid change must be caught");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == "histogram-conservation"),
        "got: {report}"
    );

    // ...but a journaled coarse-congestion degradation legitimately
    // shrinks the estimation grid for the remaining rounds.
    let degraded = dir.join("degraded.jsonl");
    write_lines(
        &degraded,
        &[
            r#"{"t":"congest.round","elapsed_s":0.1,"h_hist":[50,20,10,10,5,3,1,1],"v_hist":[50,20,10,10,5,3,1,1],"congested":2}"#,
            r#"{"t":"flow.degrade","elapsed_s":0.15,"step":"coarse-congestion","fraction_remaining":0.45,"iter":3}"#,
            r#"{"t":"congest.round","elapsed_s":0.2,"h_hist":[10,5,5,3,1,1,0,0],"v_hist":[10,5,5,3,1,1,0,0],"congested":1}"#,
            r#"{"t":"congest.round","elapsed_s":0.3,"h_hist":[9,6,5,3,1,1,0,0],"v_hist":[9,6,5,3,1,1,0,0],"congested":1}"#,
        ],
    );
    let summary = audit_metrics(&degraded).expect("recorded coarsening passes");
    assert_eq!(summary.gcells, Some(25));

    // One degrade record licenses one shrink — growing back is still wrong.
    let grown = dir.join("grown.jsonl");
    write_lines(
        &grown,
        &[
            r#"{"t":"congest.round","elapsed_s":0.1,"h_hist":[10,5,5,3,1,1,0,0],"v_hist":[10,5,5,3,1,1,0,0],"congested":1}"#,
            r#"{"t":"flow.degrade","elapsed_s":0.15,"step":"coarse-congestion","fraction_remaining":0.45,"iter":3}"#,
            r#"{"t":"congest.round","elapsed_s":0.2,"h_hist":[50,20,10,10,5,3,1,1],"v_hist":[50,20,10,10,5,3,1,1],"congested":2}"#,
        ],
    );
    let report = audit_metrics(&grown).expect_err("a coarsened grid cannot grow");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.check == "histogram-conservation"),
        "got: {report}"
    );
}

#[test]
fn shrinking_iteration_stream_is_detected() {
    let dir = tmp_dir("iter-stream");
    let path = dir.join("bad.jsonl");
    write_lines(
        &path,
        &[
            r#"{"t":"place.iter","elapsed_s":0.1,"iter":2,"hpwl":10.0,"overflow":0.5,"lambda":1e-4}"#,
            r#"{"t":"place.iter","elapsed_s":0.2,"iter":2,"hpwl":9.0,"overflow":0.4,"lambda":2e-4}"#,
        ],
    );
    let report = audit_metrics(&path).expect_err("repeated iteration must be caught");
    assert!(
        report.violations.iter().any(|v| v.check == "place-iter"),
        "got: {report}"
    );
}

// ---------------------------------------------------------------------------
// Journal corruptions and cross-file consistency
// ---------------------------------------------------------------------------

#[test]
fn truncated_journal_fails_the_run_audit() {
    let dir = tmp_dir("truncated-journal");
    let d = small_design();
    let mut config = PufferConfig::default();
    config.placer.max_iters = 60;
    config.strategy.max_rounds = 1;

    let journal = dir.join("run.pj");
    let metrics = dir.join("run.jsonl");
    let trace = puffer_trace::Trace::with_sink(&metrics).unwrap();
    PufferPlacer::new(config)
        .with_trace(trace)
        .place_with_checkpoints(&d, &CheckpointPolicy::new(journal.clone()))
        .expect("place");

    // The intact pair is consistent.
    audit_run(&journal, &metrics).expect("intact run must audit clean");

    // Cut the journal mid-file: the audit must report a parse violation
    // rather than succeed or abort.
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::write(&journal, &text[..text.len() / 2]).unwrap();
    let report = audit_run(&journal, &metrics).expect_err("truncation must be caught");
    assert!(
        report.violations.iter().any(|v| v.check == "journal-parse"),
        "got: {report}"
    );
}
