//! Placer shootout: the Table II experiment in miniature — PUFFER vs the
//! commercial-style reference flow vs the RePlAce-style baseline on one
//! congested benchmark, all judged by the same global router.
//!
//! ```text
//! cargo run --release --example placer_shootout [scale]
//! ```
//!
//! The optional positional argument scales the benchmark (default 0.01 =
//! ~12K cells for MEDIA_SUBSYS; the full Table II harness lives in
//! `cargo run -p puffer-bench --bin table2`).

use puffer::{
    evaluate, ComparisonTable, EvalRow, PufferConfig, PufferPlacer, ReferenceConfig,
    ReferencePlacer, ReplaceConfig, ReplacePlacer,
};
use puffer_gen::{generate, presets};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.01);
    let design = generate(
        &presets::by_name("media_subsys", scale)?.expect("preset exists"),
    )?;
    println!(
        "benchmark {} at scale {scale}: {} cells, {} nets\n",
        design.name(),
        design.stats().movable_cells,
        design.stats().nets
    );

    let mut table = ComparisonTable::new();
    let mut add = |flow: &str, result: puffer::FlowResult| {
        let report = evaluate(&design, &result.placement);
        println!(
            "{flow:<16}: HOF {:>5.2}% VOF {:>5.2}% WL {:>9.0} RT {:>6.1}s",
            report.hof_pct, report.vof_pct, report.wirelength, result.runtime_s
        );
        table.push(EvalRow {
            benchmark: design.name().to_string(),
            flow: flow.to_string(),
            hof_pct: report.hof_pct,
            vof_pct: report.vof_pct,
            wirelength: report.wirelength,
            runtime_s: result.runtime_s,
        });
    };

    add(
        "Commercial_Ref",
        ReferencePlacer::new(ReferenceConfig::default()).place(&design)?,
    );
    add(
        "RePlAce-like",
        ReplacePlacer::new(ReplaceConfig::default()).place(&design)?,
    );
    add(
        "PUFFER",
        PufferPlacer::new(PufferConfig::default()).place(&design)?,
    );

    println!("\n{}", table.render("PUFFER"));
    Ok(())
}
