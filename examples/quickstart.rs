//! Quickstart: generate a small design, place it with PUFFER, legalize,
//! and evaluate routability with the global router.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_db::hpwl::total_hpwl;
use puffer_gen::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic design: 3000 cells with a mild congestion hotspot.
    let design = generate(&GeneratorConfig {
        name: "quickstart".into(),
        num_cells: 3000,
        num_nets: 3400,
        num_macros: 4,
        utilization: 0.72,
        hotspot: 0.4,
        ..GeneratorConfig::default()
    })?;
    let stats = design.stats();
    println!(
        "design '{}': {} cells, {} nets, {} pins, {} macros",
        design.name(),
        stats.movable_cells,
        stats.nets,
        stats.movable_pins,
        stats.macros
    );

    // 2. The full PUFFER flow: electrostatic global placement with
    //    interleaved multi-feature cell padding, then white-space-assisted
    //    legalization.
    let result = PufferPlacer::new(PufferConfig::default()).place(&design)?;
    println!(
        "placed in {:.1}s: {} GP iterations, {} padding rounds, final overflow {:.3}",
        result.runtime_s, result.gp_iterations, result.pad_rounds, result.final_overflow
    );
    println!(
        "legal HPWL: {:.0}",
        total_hpwl(design.netlist(), &result.placement)
    );

    // 3. Judge routability with the global router (the paper's evaluator).
    let report = evaluate(&design, &result.placement);
    println!(
        "routed: HOF {:.2}% VOF {:.2}% WL {:.0} ({} overflowed Gcells, {} rip-up rounds)",
        report.hof_pct, report.vof_pct, report.wirelength, report.overflow_gcells, report.rounds
    );
    println!(
        "1%-criterion: {}",
        if report.passes() { "PASS" } else { "FAIL" }
    );
    Ok(())
}
