//! Detailed placement after the PUFFER flow: recover wirelength without
//! undoing the padding's congestion relief.
//!
//! Runs the full PUFFER flow, then refines the legal placement twice — once
//! plain, once with the routability guard that forbids moves into Gcells
//! more overflowed than the source — and routes all three placements.
//!
//! ```text
//! cargo run --release --example detailed_refine
//! ```

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_dp::{refine, refine_with_congestion, DetailedConfig};
use puffer_gen::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = generate(&GeneratorConfig {
        name: "dp_demo".into(),
        num_cells: 3000,
        num_nets: 3400,
        num_macros: 3,
        utilization: 0.78,
        hotspot: 0.7,
        ..GeneratorConfig::default()
    })?;
    let flow = PufferPlacer::new(PufferConfig::default()).place(&design)?;
    let base = evaluate(&design, &flow.placement);
    println!(
        "after PUFFER     : HPWL {:>9.0}  HOF {:>5.2}% VOF {:>5.2}%",
        flow.hpwl, base.hof_pct, base.vof_pct
    );

    // Detailed placement operates on the unpadded legal placement here
    // (the flow strips padding after legalization), so footprints are the
    // physical cells.
    let zeros = vec![0u32; design.netlist().num_cells()];

    let plain = refine(&design, &flow.placement, &zeros, &DetailedConfig::default())?;
    let plain_route = evaluate(&design, &plain.placement);
    println!(
        "+ detailed (plain): HPWL {:>9.0}  HOF {:>5.2}% VOF {:>5.2}%  ({} moves)",
        plain.hpwl_after, plain_route.hof_pct, plain_route.vof_pct, plain.moves
    );

    let guarded = refine_with_congestion(
        &design,
        &flow.placement,
        &zeros,
        &DetailedConfig::default(),
        &base.congestion,
    )?;
    let guarded_route = evaluate(&design, &guarded.placement);
    println!(
        "+ detailed (guard): HPWL {:>9.0}  HOF {:>5.2}% VOF {:>5.2}%  ({} moves)",
        guarded.hpwl_after, guarded_route.hof_pct, guarded_route.vof_pct, guarded.moves
    );

    println!(
        "\nwirelength recovered: plain {:.2}%, guarded {:.2}%",
        100.0 * (1.0 - plain.hpwl_after / plain.hpwl_before),
        100.0 * (1.0 - guarded.hpwl_after / guarded.hpwl_before),
    );
    Ok(())
}
