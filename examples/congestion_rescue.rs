//! Congestion rescue: the workload the paper's introduction motivates — a
//! design with a severe routing hotspot that a plain wirelength-driven
//! placement cannot route, rescued by PUFFER's cell padding.
//!
//! The example places the same hotspot design twice (with the routability
//! optimizer disabled and enabled), routes both, and prints side-by-side
//! congestion heatmaps so the padding's effect is visible — the ASCII
//! analogue of the paper's Fig. 5.
//!
//! ```text
//! cargo run --release --example congestion_rescue
//! ```

use puffer::{evaluate, PufferConfig, PufferPlacer};
use puffer_gen::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately nasty design: high utilization, strong hotspot.
    let design = generate(&GeneratorConfig {
        name: "hotspot".into(),
        num_cells: 4000,
        num_nets: 4400,
        num_macros: 3,
        utilization: 0.82,
        hotspot: 0.9,
        ..GeneratorConfig::default()
    })?;
    println!(
        "design '{}': {} cells, utilization {:.2}, hotspot logic in one corner\n",
        design.name(),
        design.stats().movable_cells,
        design.utilization()
    );

    // --- wirelength-driven placement only (padding off) -------------------
    let mut plain_cfg = PufferConfig::default();
    plain_cfg.strategy.max_rounds = 0; // routability optimizer never fires
    let plain = PufferPlacer::new(plain_cfg).place(&design)?;
    let plain_report = evaluate(&design, &plain.placement);

    // --- the full PUFFER flow ---------------------------------------------
    let puffer = PufferPlacer::new(PufferConfig::default()).place(&design)?;
    let puffer_report = evaluate(&design, &puffer.placement);

    println!(
        "wirelength-driven : HOF {:>5.2}% VOF {:>5.2}% WL {:>9.0}  ({})",
        plain_report.hof_pct,
        plain_report.vof_pct,
        plain_report.wirelength,
        if plain_report.passes() {
            "PASS"
        } else {
            "FAIL"
        },
    );
    println!(
        "PUFFER            : HOF {:>5.2}% VOF {:>5.2}% WL {:>9.0}  ({}, {} padding rounds)\n",
        puffer_report.hof_pct,
        puffer_report.vof_pct,
        puffer_report.wirelength,
        if puffer_report.passes() {
            "PASS"
        } else {
            "FAIL"
        },
        puffer.pad_rounds,
    );

    println!("horizontal congestion, wirelength-driven:");
    println!("{}", plain_report.congestion.render_ascii(true));
    println!("horizontal congestion, PUFFER:");
    println!("{}", puffer_report.congestion.render_ascii(true));

    let improvement = (plain_report.hof_pct + plain_report.vof_pct)
        - (puffer_report.hof_pct + puffer_report.vof_pct);
    println!("total overflow improvement: {improvement:.2} percentage points");
    Ok(())
}
