//! Strategy exploration (paper §III-C): tune the padding strategy on a
//! small congested design with SMBO/TPE, then compare the tuned strategy
//! against the defaults.
//!
//! The paper's protocol is followed: tune on a *small* design with the
//! routability problem (cheap evaluations), then apply the result. The
//! exploration here uses a deliberately tiny budget so the example runs in
//! a couple of minutes; the `explore` harness binary runs the full
//! Algorithm 3 with grouped parallel refinement.
//!
//! ```text
//! cargo run --release --example strategy_exploration
//! ```

use puffer::{evaluate, strategy_space, tuned_strategy, PufferConfig, PufferPlacer};
use puffer_explore::{explore_params, ExplorationConfig};
use puffer_gen::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = generate(&GeneratorConfig {
        name: "tuning_target".into(),
        num_cells: 1200,
        num_nets: 1350,
        num_macros: 2,
        utilization: 0.83,
        hotspot: 0.9,
        ..GeneratorConfig::default()
    })?;
    println!(
        "tuning on '{}' ({} cells, utilization {:.2})",
        design.name(),
        design.stats().movable_cells,
        design.utilization()
    );

    let space = strategy_space();

    // Objective (paper §III-C): total overflow ratio of both directions,
    // evaluated by placement + global routing.
    let mut evals = 0usize;
    let objective = |values: &[f64]| -> f64 {
        let mut cfg = PufferConfig {
            strategy: tuned_strategy(&space, values),
            ..PufferConfig::default()
        };
        cfg.placer.max_iters = 200; // reduced budget for tuning
        cfg.placer.stop_overflow = 0.10;
        match PufferPlacer::new(cfg).place(&design) {
            Ok(result) => {
                let report = evaluate(&design, &result.placement);
                report.hof_pct + report.vof_pct
            }
            Err(_) => f64::INFINITY,
        }
    };

    let outcome = explore_params(
        &space,
        |v| {
            evals += 1;
            let score = objective(v);
            println!("  eval {evals:>2}: HOF+VOF = {score:.3}");
            score
        },
        &ExplorationConfig {
            max_evals: 14,
            early_stop: 14,
            ..Default::default()
        },
    )
    .expect("exploration failed");
    println!(
        "\nexploration done after {} evaluations; best HOF+VOF {:.3}",
        outcome.evals, outcome.best_value
    );

    // Compare default vs tuned at the full placement budget.
    let default_flow = PufferPlacer::new(PufferConfig::default()).place(&design)?;
    let default_report = evaluate(&design, &default_flow.placement);
    let tuned_cfg = PufferConfig {
        strategy: tuned_strategy(&space, &outcome.best),
        ..PufferConfig::default()
    };
    let tuned_flow = PufferPlacer::new(tuned_cfg).place(&design)?;
    let tuned_report = evaluate(&design, &tuned_flow.placement);

    println!("\nat full placement budget:");
    println!(
        "  default strategy: HOF {:.2}% VOF {:.2}% (sum {:.2})",
        default_report.hof_pct,
        default_report.vof_pct,
        default_report.hof_pct + default_report.vof_pct
    );
    println!(
        "  tuned strategy  : HOF {:.2}% VOF {:.2}% (sum {:.2})",
        tuned_report.hof_pct,
        tuned_report.vof_pct,
        tuned_report.hof_pct + tuned_report.vof_pct
    );
    println!("\ntuned parameters (best observed):");
    for (p, v) in space.params().iter().zip(&outcome.best) {
        println!("  {:<12} = {v:.4}", p.name);
    }
    Ok(())
}
